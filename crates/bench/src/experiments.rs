//! The paper's experiments as reusable functions.
//!
//! All experiments share the paper's setup: 10 Mbps links, elastic QoS
//! 100–500 Kbps, λ = μ = 0.001, equal utilities, random (Waxman) networks
//! calibrated to the paper's 100-node/354-edge statistics, and a
//! transit-stub ("Tier") alternative for Table 1.
//!
//! Each experiment is a sweep over independent points and runs through
//! [`crate::runner::sweep`], which fans the points across worker threads
//! (`DRQOS_THREADS`) and returns rows in input order with per-point
//! timing/counters attached. Per-point seeds come from
//! [`crate::runner::derive_seed`] — a split-mix hash of `(base seed,
//! point index)` — and sub-runs within a point (Table 1's four networks,
//! Figure 4's two load levels, the ablation's three variants) derive
//! further with a distinct salt each, so no two simulated streams share a
//! seed.

use crate::runner::{derive_seed, sweep, PointObs, Sweep};
use drqos_analysis::pipeline::{analyze, analyze_scenario, ExperimentAnalysis};
use drqos_core::experiment::ExperimentConfig;
use drqos_core::network::NetworkConfig;
use drqos_core::qos::{AdaptationPolicy, Bandwidth, ElasticQos};
use drqos_core::scenario::{Scenario, ScenarioKind};
use drqos_sim::rng::Rng;
use drqos_topology::graph::Graph;
use drqos_topology::transit_stub::TransitStubConfig;
use drqos_topology::waxman;

/// The paper's evaluation network: 100-node Waxman calibrated to 354
/// edges, deterministic for a seed.
pub fn paper_graph(nodes: usize, seed: u64) -> Graph {
    waxman::paper_waxman(nodes)
        .generate(&mut Rng::seed_from_u64(seed))
        .expect("calibrated parameters are valid")
}

/// The paper's Figure 3 network: the same Waxman model grown at constant
/// density.
pub fn paper_graph_scaled(nodes: usize, seed: u64) -> Graph {
    waxman::paper_waxman_scaled(nodes)
        .generate(&mut Rng::seed_from_u64(seed))
        .expect("calibrated parameters are valid")
}

/// The paper's "Tier" network: a ~100-node transit-stub graph.
pub fn tier_graph(seed: u64) -> Graph {
    TransitStubConfig::paper_default()
        .generate(&mut Rng::seed_from_u64(seed))
        .expect("paper defaults are valid")
        .graph
}

// ------------------------------------------------------------- Figure 2 --

/// One point of Figure 2: average bandwidth vs. number of DR-connections.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Connections attempted during warm-up (the x-axis).
    pub nchan: usize,
    /// Connections active at the end of the run.
    pub active: usize,
    /// Simulated average bandwidth (Kbps) — the paper's solid line.
    pub sim: f64,
    /// Markov-model average bandwidth (Kbps) — the dashed line
    /// (`NaN` when the model degenerated).
    pub analytic: f64,
    /// Ideal average bandwidth (Kbps) — the dotted line.
    pub ideal: f64,
}

/// Runs Figure 2: a sweep over the offered number of DR-connections on the
/// 100-node random network, 9-state chain (Δ = 50 Kbps), γ = 0.
pub fn fig2(points: &[usize], churn_events: usize, seed: u64) -> Sweep<Fig2Row> {
    sweep(seed, points, |&nchan, point_seed| {
        let mut config = ExperimentConfig::paper_default(nchan, 50);
        config.churn_events = churn_events;
        config.seed = point_seed;
        let a = analyze(paper_graph(100, seed), &config);
        let mut obs = PointObs::default();
        obs.absorb(&config, &a.report);
        (fig2_row(nchan, &a), obs)
    })
}

fn fig2_row(nchan: usize, a: &ExperimentAnalysis) -> Fig2Row {
    Fig2Row {
        nchan,
        active: a.report.active_end,
        sim: a.report.avg_bandwidth_sim,
        analytic: a.analytic_avg.unwrap_or(f64::NAN),
        ideal: a.ideal_avg,
    }
}

// -------------------------------------------------------------- Table 1 --

/// One row of Table 1: average bandwidth for 5-state (Δ = 100) vs. 9-state
/// (Δ = 50) chains, on the Random and Tier networks.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Connections attempted (the paper notes that on the Tier network most
    /// are rejected; the column counts *attempts*).
    pub nchan: usize,
    /// Analytic average bandwidth, Random network, 5-state chain.
    pub random5: f64,
    /// Analytic average bandwidth, Random network, 9-state chain.
    pub random9: f64,
    /// Analytic average bandwidth, Tier network, 5-state chain.
    pub tier5: f64,
    /// Analytic average bandwidth, Tier network, 9-state chain.
    pub tier9: f64,
    /// Connections actually active on the Tier network at the end.
    pub tier_active: usize,
}

/// Runs Table 1 for the given load points.
pub fn table1(points: &[usize], churn_events: usize, seed: u64) -> Sweep<Table1Row> {
    sweep(seed, points, |&nchan, point_seed| {
        let mut obs = PointObs::default();
        let mut run = |graph: Graph, increment: u64, salt: u64| {
            let mut config = ExperimentConfig::paper_default(nchan, increment);
            config.churn_events = churn_events;
            config.seed = derive_seed(point_seed, salt);
            let a = analyze(graph, &config);
            obs.absorb(&config, &a.report);
            a
        };
        let r5 = run(paper_graph(100, seed), 100, 0);
        let r9 = run(paper_graph(100, seed), 50, 1);
        let t5 = run(tier_graph(seed), 100, 2);
        let t9 = run(tier_graph(seed), 50, 3);
        let row = Table1Row {
            nchan,
            random5: r5.analytic_avg.unwrap_or(f64::NAN),
            random9: r9.analytic_avg.unwrap_or(f64::NAN),
            tier5: t5.analytic_avg.unwrap_or(f64::NAN),
            tier9: t9.analytic_avg.unwrap_or(f64::NAN),
            tier_active: t9.report.active_end,
        };
        (row, obs)
    })
}

// ------------------------------------------------------------- Figure 3 --

/// One point of Figure 3: average bandwidth vs. network size at a fixed
/// load of 3000 connections.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Nodes in the network (the x-axis).
    pub nodes: usize,
    /// Edges in the generated network (the paper's upper dotted line).
    pub edges: usize,
    /// Simulated average bandwidth (Kbps).
    pub sim: f64,
    /// Analytic average bandwidth (Kbps).
    pub analytic: f64,
}

/// Runs Figure 3: network size sweep at fixed offered load.
pub fn fig3(node_counts: &[usize], nchan: usize, churn_events: usize, seed: u64) -> Sweep<Fig3Row> {
    sweep(seed, node_counts, |&nodes, point_seed| {
        let mut config = ExperimentConfig::paper_default(nchan, 50);
        config.churn_events = churn_events;
        config.seed = point_seed;
        let a = analyze(paper_graph_scaled(nodes, seed), &config);
        let mut obs = PointObs::default();
        obs.absorb(&config, &a.report);
        let row = Fig3Row {
            nodes,
            edges: a.edges,
            sim: a.report.avg_bandwidth_sim,
            analytic: a.analytic_avg.unwrap_or(f64::NAN),
        };
        (row, obs)
    })
}

// ------------------------------------------------------------- Figure 4 --

/// One point of Figure 4: average bandwidth vs. link failure rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Link failure rate γ (the x-axis, log scale in the paper).
    pub gamma: f64,
    /// Simulated average with 2000 connections.
    pub sim2000: f64,
    /// Analytic average with 2000 connections.
    pub analytic2000: f64,
    /// Simulated average with 3000 connections.
    pub sim3000: f64,
    /// Analytic average with 3000 connections.
    pub analytic3000: f64,
}

/// Runs Figure 4: failure-rate sweep at 2000 and 3000 connections,
/// 9-state chain.
pub fn fig4(gammas: &[f64], churn_events: usize, seed: u64) -> Sweep<Fig4Row> {
    sweep(seed, gammas, |&gamma, point_seed| {
        let mut obs = PointObs::default();
        let mut run = |nchan: usize| {
            let mut config = ExperimentConfig::paper_default(nchan, 50);
            config.churn_events = churn_events;
            config.gamma = gamma;
            config.seed = derive_seed(point_seed, nchan as u64);
            let a = analyze(paper_graph(100, seed), &config);
            obs.absorb(&config, &a.report);
            a
        };
        let a2 = run(2000);
        let a3 = run(3000);
        let row = Fig4Row {
            gamma,
            sim2000: a2.report.avg_bandwidth_sim,
            analytic2000: a2.analytic_avg.unwrap_or(f64::NAN),
            sim3000: a3.report.avg_bandwidth_sim,
            analytic3000: a3.analytic_avg.unwrap_or(f64::NAN),
        };
        (row, obs)
    })
}

// ------------------------------------------------------------- ablation --

/// One row of the elastic-vs-rigid ablation (the gain the paper's scheme
/// delivers over single-value QoS, Section 1's motivation).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Connections attempted.
    pub nchan: usize,
    /// Average bandwidth with elastic QoS (Kbps).
    pub elastic_avg: f64,
    /// Connections accepted with elastic QoS.
    pub elastic_accepted: u64,
    /// Average bandwidth with rigid (single-value minimum) QoS (Kbps).
    pub rigid_avg: f64,
    /// Connections accepted with rigid QoS.
    pub rigid_accepted: u64,
    /// Average bandwidth under the max-utility policy (Kbps).
    pub max_utility_avg: f64,
}

/// Runs the ablation: elastic (coefficient), rigid, and max-utility
/// variants at each load point.
pub fn ablation(points: &[usize], churn_events: usize, seed: u64) -> Sweep<AblationRow> {
    sweep(seed, points, |&nchan, point_seed| {
        let mut obs = PointObs::default();
        let mut run = |qos: ElasticQos, policy: AdaptationPolicy, salt: u64| {
            let mut config = ExperimentConfig::paper_default(nchan, 50);
            config.qos = qos;
            config.network = NetworkConfig {
                policy,
                ..NetworkConfig::default()
            };
            config.churn_events = churn_events;
            config.seed = derive_seed(point_seed, salt);
            let a = analyze(paper_graph(100, seed), &config);
            obs.absorb(&config, &a.report);
            a
        };
        let elastic = run(
            ElasticQos::paper_video(50),
            AdaptationPolicy::Coefficient,
            0,
        );
        let rigid = run(
            ElasticQos::rigid(Bandwidth::kbps(100)).expect("non-zero"),
            AdaptationPolicy::Coefficient,
            1,
        );
        let max_utility = run(ElasticQos::paper_video(50), AdaptationPolicy::MaxUtility, 2);
        let row = AblationRow {
            nchan,
            elastic_avg: elastic.report.avg_bandwidth_sim,
            elastic_accepted: elastic.report.accepted,
            rigid_avg: rigid.report.avg_bandwidth_sim,
            rigid_accepted: rigid.report.accepted,
            max_utility_avg: max_utility.report.avg_bandwidth_sim,
        };
        (row, obs)
    })
}

// -------------------------------------------------- dependability sweep --

/// One row of the backup-count dependability ablation: how many
/// connections die under a failure storm, for 0 / 1 / 2 backups each.
#[derive(Debug, Clone, PartialEq)]
pub struct DependabilityRow {
    /// Backups configured per connection.
    pub backup_count: usize,
    /// Connections accepted.
    pub accepted: u64,
    /// Connections dropped by failures.
    pub dropped: u64,
    /// Failures injected.
    pub failures: u64,
    /// Average bandwidth over the run (Kbps).
    pub avg_bandwidth: f64,
    /// Connections still being served when the storm ended — the carried
    /// load, which is what actually collapses without backups.
    pub active_end: usize,
}

impl DependabilityRow {
    /// Dropped fraction of accepted connections.
    pub fn drop_ratio(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.dropped as f64 / self.accepted as f64
        }
    }
}

/// Runs a failure storm (γ comparable to λ, slow repair) against networks
/// configured with different per-connection backup counts — the
/// dependability payoff the passive backup scheme exists for, extended to
/// the Han–Shin "one or more backups" case.
///
/// Per-point seeds come from the split-mix derivation, so the
/// `backup_count = 0` row no longer reuses the graph seed verbatim (the
/// old `seed ^ count` scheme did exactly that at count 0).
pub fn dependability(
    backup_counts: &[usize],
    nchan: usize,
    churn_events: usize,
    seed: u64,
) -> Sweep<DependabilityRow> {
    sweep(seed, backup_counts, |&count, point_seed| {
        let mut config = ExperimentConfig::paper_default(nchan, 50);
        config.churn_events = churn_events;
        config.gamma = 2.0 * config.lambda; // storm: failures outpace arrivals
        config.mean_repair = 5_000.0; // slow repair crews
        config.network = NetworkConfig {
            backup_count: count,
            require_backup: count > 0,
            ..NetworkConfig::default()
        };
        config.seed = point_seed;
        let (report, _) = drqos_core::experiment::run_churn(paper_graph(100, seed), &config);
        let mut obs = PointObs::default();
        obs.absorb(&config, &report);
        let row = DependabilityRow {
            backup_count: count,
            accepted: report.accepted,
            dropped: report.dropped,
            failures: report.failures,
            avg_bandwidth: report.avg_bandwidth_sim,
            active_end: report.active_end,
        };
        (row, obs)
    })
}

// ------------------------------------------------------ scenario sweep --

/// One row of the adversarial scenario sweep: a Figure 2 load point
/// re-run under one [`ScenarioKind`], with the Markov model's relative
/// divergence alongside — the number that says how far each adversarial
/// world pushes reality away from the paper's calibrated regime.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSweepRow {
    /// Canonical scenario name (the `DRQOS_SCENARIO` spelling).
    pub scenario: &'static str,
    /// Connections attempted during warm-up (the x-axis).
    pub nchan: usize,
    /// Connections active at the end of the run.
    pub active: usize,
    /// Connections dropped by failures (correlated ones included).
    pub dropped: u64,
    /// Simulated average bandwidth (Kbps).
    pub sim: f64,
    /// Markov-model average bandwidth (Kbps; `NaN` when degenerate).
    pub analytic: f64,
    /// Relative model-vs-sim divergence `|model − sim| / sim`
    /// (`NaN` when the model degenerated).
    pub divergence: f64,
}

/// Relative model-vs-sim divergence; `NaN` when either side degenerated.
pub fn model_divergence(sim: f64, analytic: f64) -> f64 {
    if sim > 0.0 && analytic.is_finite() {
        (analytic - sim).abs() / sim
    } else {
        f64::NAN
    }
}

/// Re-runs the Figure 2 load sweep under **every** scenario kind (the
/// cross product `ScenarioKind::ALL × points`, each its own sweep point
/// with its own derived seed) on the 100-node random network, 9-state
/// chain. The baseline rows calibrate the divergence column: the model
/// should track them closely, and lose ground under the adversarial
/// kinds it was never fitted for.
pub fn scenario_sweep(points: &[usize], churn_events: usize, seed: u64) -> Sweep<ScenarioSweepRow> {
    let cross: Vec<(ScenarioKind, usize)> = ScenarioKind::ALL
        .iter()
        .flat_map(|&kind| points.iter().map(move |&nchan| (kind, nchan)))
        .collect();
    sweep(seed, &cross, |&(kind, nchan), point_seed| {
        let mut config = ExperimentConfig::paper_default(nchan, 50);
        config.churn_events = churn_events;
        config.seed = point_seed;
        let a = analyze_scenario(paper_graph(100, seed), &config, &Scenario::new(kind));
        let mut obs = PointObs::default();
        obs.absorb(&config, &a.report);
        (scenario_sweep_row(kind, nchan, &a), obs)
    })
}

/// Re-runs the Figure 3 network-size sweep under every scenario kind at a
/// fixed offered load, same divergence column as [`scenario_sweep`].
pub fn scenario_scaling(
    node_counts: &[usize],
    nchan: usize,
    churn_events: usize,
    seed: u64,
) -> Sweep<ScenarioSweepRow> {
    let cross: Vec<(ScenarioKind, usize)> = ScenarioKind::ALL
        .iter()
        .flat_map(|&kind| node_counts.iter().map(move |&nodes| (kind, nodes)))
        .collect();
    sweep(seed, &cross, |&(kind, nodes), point_seed| {
        let mut config = ExperimentConfig::paper_default(nchan, 50);
        config.churn_events = churn_events;
        config.seed = point_seed;
        let a = analyze_scenario(
            paper_graph_scaled(nodes, seed),
            &config,
            &Scenario::new(kind),
        );
        let mut obs = PointObs::default();
        obs.absorb(&config, &a.report);
        (scenario_sweep_row(kind, nodes, &a), obs)
    })
}

fn scenario_sweep_row(
    kind: ScenarioKind,
    nchan: usize,
    a: &ExperimentAnalysis,
) -> ScenarioSweepRow {
    let sim = a.report.avg_bandwidth_sim;
    let analytic = a.analytic_avg.unwrap_or(f64::NAN);
    ScenarioSweepRow {
        scenario: kind.name(),
        nchan,
        active: a.report.active_end,
        dropped: a.report.dropped,
        sim,
        analytic,
        divergence: model_divergence(sim, analytic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Scaled-down smoke tests: the binaries run the full-size versions.

    #[test]
    fn fig2_shape_holds_at_small_scale() {
        let rows = fig2(&[50, 600], 300, 7).into_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].sim > rows[1].sim, "load must depress bandwidth");
        // Channel-time weighting can carry ~1e-10 float noise past the rails.
        assert!(rows[0].sim <= 500.0 + 1e-6 && rows[1].sim >= 100.0 - 1e-6);
    }

    #[test]
    fn fig2_records_observability() {
        let result = fig2(&[50], 100, 7);
        let rec = &result.records[0];
        assert!(rec.obs.events > 0, "events must be counted");
        assert!(rec.obs.attempted > 0);
        assert!(rec.wall > std::time::Duration::ZERO);
        assert_eq!(result.total_events(), rec.obs.events);
    }

    #[test]
    fn table1_increment_size_is_immaterial() {
        let rows = table1(&[400], 300, 7).into_rows();
        let r = &rows[0];
        // The paper: "no difference in the average bandwidth even though
        // they have a different number of states" — allow a loose band at
        // this tiny scale.
        if r.random5.is_finite() && r.random9.is_finite() {
            assert!(
                (r.random5 - r.random9).abs() < 120.0,
                "5-state {} vs 9-state {}",
                r.random5,
                r.random9
            );
        }
        assert!(r.tier_active < 400, "Tier should reject many");
    }

    #[test]
    fn fig3_edges_grow_with_nodes() {
        let rows = fig3(&[50, 150], 200, 100, 7).into_rows();
        assert!(rows[1].edges > rows[0].edges);
    }

    #[test]
    fn fig4_failure_rate_has_no_visible_effect() {
        let rows = fig4(&[1e-7, 1e-4], 300, 7).into_rows();
        let spread = (rows[0].sim2000 - rows[1].sim2000).abs();
        assert!(
            spread < 60.0,
            "tiny γ should not move the average: {spread}"
        );
    }

    #[test]
    fn dependability_backups_preserve_carried_load() {
        let rows = dependability(&[0, 1], 300, 300, 7).into_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].failures > 0, "storm must produce failures");
        // Without backups the population collapses under the storm; with
        // one backup per connection the carried load survives.
        assert!(
            rows[1].active_end > rows[0].active_end,
            "backups must preserve carried load: {} vs {}",
            rows[1].active_end,
            rows[0].active_end
        );
        assert!(rows[0].dropped > 0);
    }

    #[test]
    fn scenario_sweep_covers_every_kind_with_divergence() {
        let rows = scenario_sweep(&[60], 300, 7).into_rows();
        assert_eq!(rows.len(), ScenarioKind::ALL.len());
        let names: Vec<&str> = rows.iter().map(|r| r.scenario).collect();
        for kind in ScenarioKind::ALL {
            assert!(names.contains(&kind.name()), "{kind} row missing");
        }
        for r in &rows {
            assert!(r.sim >= 100.0 - 1e-6 && r.sim <= 500.0 + 1e-6, "{r:?}");
            if r.analytic.is_finite() {
                assert!(r.divergence.is_finite() && r.divergence >= 0.0, "{r:?}");
            }
        }
        // The baseline row must carry a usable divergence — the sweep's
        // calibration anchor.
        let base = rows.iter().find(|r| r.scenario == "baseline").unwrap();
        assert!(base.divergence.is_finite(), "{base:?}");
    }

    #[test]
    fn scenario_scaling_covers_every_kind() {
        let rows = scenario_scaling(&[40], 50, 200, 7).into_rows();
        assert_eq!(rows.len(), ScenarioKind::ALL.len());
        for r in &rows {
            assert_eq!(r.nchan, 40, "the x column carries the node count");
        }
    }

    #[test]
    fn model_divergence_handles_degenerate_inputs() {
        assert!((model_divergence(400.0, 440.0) - 0.1).abs() < 1e-12);
        assert!(model_divergence(0.0, 440.0).is_nan());
        assert!(model_divergence(400.0, f64::NAN).is_nan());
    }

    #[test]
    fn ablation_elastic_beats_rigid_bandwidth() {
        let rows = ablation(&[100], 200, 7).into_rows();
        let r = &rows[0];
        assert!(
            r.elastic_avg > r.rigid_avg,
            "elastic {} must beat rigid {}",
            r.elastic_avg,
            r.rigid_avg
        );
        assert!(
            (r.rigid_avg - 100.0).abs() < 1e-6,
            "rigid sits at the single value, got {}",
            r.rigid_avg
        );
    }
}
