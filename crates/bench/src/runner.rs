//! The parallel experiment sweep engine.
//!
//! Every figure/table of the paper's evaluation is a *sweep*: a list of
//! independent points (load levels, network sizes, failure rates, backup
//! counts), each simulated with its own deterministically derived seed.
//! [`sweep`] fans those points across scoped worker threads and collects
//! the rows back **in input order**, so CSV output is byte-identical to a
//! sequential run regardless of the worker count.
//!
//! * Worker count comes from the `DRQOS_THREADS` environment variable
//!   (default: the machine's available parallelism).
//! * Per-point seeds are derived with a split-mix hash ([`derive_seed`])
//!   instead of ad-hoc XOR, so nearby points never collide and the base
//!   seed is never reused verbatim.
//! * Each point records wall time and simulation counters
//!   ([`PointObs`]), which the binaries append as extra CSV columns and
//!   aggregate into `target/experiments/runtime.json`.

use drqos_core::experiment::{ExperimentConfig, ExperimentReport};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ------------------------------------------------------ seed derivation --

/// The split-mix-64 finalizer: a bijective avalanche mix of the input.
///
/// Every bit of the input affects every bit of the output, unlike the XOR
/// folding it replaces (where `seed ^ 0` returned the seed verbatim and
/// nearby counts produced correlated streams).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent stream seed from a base seed and a salt
/// (point index, increment size, variant tag, ...).
///
/// `derive_seed(base, 0) != base`, and distinct `(base, salt)` pairs give
/// uncorrelated seeds — the properties the old `seed ^ count` scheme
/// lacked.
pub fn derive_seed(base: u64, salt: u64) -> u64 {
    splitmix64(base ^ splitmix64(salt))
}

// --------------------------------------------------------- worker count --

/// The sweep worker count: `DRQOS_THREADS` if set (minimum 1), otherwise
/// the machine's available parallelism.
pub fn thread_count() -> usize {
    drqos_core::env::threads().unwrap_or_else(|| {
        std::thread::available_parallelism() // lint:allow(determinism-taint): worker count only shapes scheduling; emitted rows are index-ordered
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

// --------------------------------------------------------- observability --

/// Simulation counters observed while computing one sweep point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointObs {
    /// Simulated events (warm-up attempts + churn events) across all runs
    /// at this point.
    pub events: u64,
    /// Connection requests attempted.
    pub attempted: u64,
    /// Requests accepted.
    pub accepted: u64,
    /// Requests rejected (no primary or no backup route).
    pub rejected: u64,
    /// Connections dropped by failures.
    pub dropped: u64,
    /// Link failures injected.
    pub failures: u64,
    /// Admission route-cache hits (zero when `DRQOS_ROUTE_CACHE=0`).
    pub cache_hits: u64,
    /// Admission route-cache misses.
    pub cache_misses: u64,
    /// Route-cache entries evicted as stale (digest mismatch or
    /// fail/repair reverse-index eviction).
    pub cache_stale: u64,
}

impl PointObs {
    /// Folds one churn run's report (and the config that produced it) into
    /// the point's counters. A point may absorb several runs (Table 1 runs
    /// four networks per load level).
    pub fn absorb(&mut self, config: &ExperimentConfig, report: &ExperimentReport) {
        self.events += (config.target_connections + config.churn_events) as u64;
        self.attempted += report.attempted;
        self.accepted += report.accepted;
        self.rejected += report.rejected_primary + report.rejected_backup;
        self.dropped += report.dropped;
        self.failures += report.failures;
        self.cache_hits += report.cache.hits;
        self.cache_misses += report.cache.misses;
        self.cache_stale += report.cache.stale_evictions;
    }
}

/// One sweep point's row plus its observability data.
#[derive(Debug, Clone)]
pub struct PointRecord<R> {
    /// The experiment row (what the paper plots).
    pub row: R,
    /// Simulation counters.
    pub obs: PointObs,
    /// Wall time spent computing this point.
    pub wall: Duration,
}

impl<R> PointRecord<R> {
    /// Simulated events per wall-clock second for this point.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.obs.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// CSV header for the observability columns appended after the series
/// columns. (Wall-clock columns vary run to run; the *series* columns stay
/// byte-identical across worker counts.)
pub const OBS_HEADER: [&str; 5] = [
    "wall_ms",
    "events_per_sec",
    "obs_accepted",
    "obs_rejected",
    "obs_dropped",
];

/// The observability cells matching [`OBS_HEADER`] for one record.
pub fn obs_cells<R>(record: &PointRecord<R>) -> Vec<String> {
    vec![
        format!("{:.3}", record.wall.as_secs_f64() * 1e3),
        format!("{:.0}", record.events_per_sec()),
        record.obs.accepted.to_string(),
        record.obs.rejected.to_string(),
        record.obs.dropped.to_string(),
    ]
}

// ---------------------------------------------------------------- sweep --

/// The outcome of a parallel sweep: per-point records in input order plus
/// whole-sweep timing.
#[derive(Debug, Clone)]
pub struct Sweep<R> {
    /// One record per input point, in input order.
    pub records: Vec<PointRecord<R>>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall time for the whole sweep.
    pub wall: Duration,
}

impl<R> Sweep<R> {
    /// The rows in input order.
    pub fn rows(&self) -> impl Iterator<Item = &R> {
        self.records.iter().map(|r| &r.row)
    }

    /// Consumes the sweep, returning the rows in input order.
    pub fn into_rows(self) -> Vec<R> {
        self.records.into_iter().map(|r| r.row).collect()
    }

    /// Total simulated events across all points.
    pub fn total_events(&self) -> u64 {
        self.records.iter().map(|r| r.obs.events).sum()
    }

    /// Aggregates this sweep into a named runtime summary for
    /// `runtime.json`.
    pub fn runtime_summary(&self, name: &str) -> RuntimeSummary {
        let mut obs = PointObs::default();
        for r in &self.records {
            obs.events += r.obs.events;
            obs.attempted += r.obs.attempted;
            obs.accepted += r.obs.accepted;
            obs.rejected += r.obs.rejected;
            obs.dropped += r.obs.dropped;
            obs.failures += r.obs.failures;
            obs.cache_hits += r.obs.cache_hits;
            obs.cache_misses += r.obs.cache_misses;
            obs.cache_stale += r.obs.cache_stale;
        }
        RuntimeSummary {
            name: name.to_string(),
            threads: self.threads,
            points: self.records.len(),
            wall_s: self.wall.as_secs_f64(),
            events_per_sec: if self.wall.as_secs_f64() > 0.0 {
                obs.events as f64 / self.wall.as_secs_f64()
            } else {
                0.0
            },
            obs,
        }
    }
}

/// Runs `point_fn` over every point, fanned across [`thread_count`] scoped
/// worker threads, and returns the records in input order.
///
/// Each point's seed is `derive_seed(base_seed, index)`, so results depend
/// only on `(base_seed, points)` — never on the worker count or on which
/// thread happened to claim which point. `point_fn` returns the row plus
/// the counters it observed ([`PointObs::absorb`] collects them from churn
/// reports).
pub fn sweep<P, R, F>(base_seed: u64, points: &[P], point_fn: F) -> Sweep<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> (R, PointObs) + Sync,
{
    let threads = thread_count().min(points.len()).max(1);
    let start = Instant::now(); // lint:allow(determinism-taint): wall-clock column is observability-only, excluded from byte diffs
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<PointRecord<R>>>> =
        points.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let seed = derive_seed(base_seed, i as u64);
                let t0 = Instant::now(); // lint:allow(determinism-taint): wall-clock column is observability-only, excluded from byte diffs
                let (row, obs) = point_fn(&points[i], seed);
                let record = PointRecord {
                    row,
                    obs,
                    wall: t0.elapsed(),
                };
                *slots[i]
                    .lock()
                    .expect("no worker panicked holding the slot") = Some(record);
            });
        }
    });
    let records = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding the slot")
                .expect("every index below len was claimed and filled")
        })
        .collect();
    Sweep {
        records,
        threads,
        wall: start.elapsed(),
    }
}

/// Exports a finished sweep: writes `target/experiments/<name>.csv` with
/// the series columns followed by the [`OBS_HEADER`] observability
/// columns, and records the sweep's aggregate timing into
/// `target/experiments/runtime.json`.
///
/// The series columns depend only on the seed and the points, so they are
/// byte-identical whether the sweep ran on one worker or many; the
/// observability columns carry wall-clock data and naturally vary.
pub fn export_sweep<R>(
    name: &str,
    series_header: &[&str],
    result: &Sweep<R>,
    series_cells: impl Fn(&R) -> Vec<String>,
) {
    let header: Vec<&str> = series_header
        .iter()
        .copied()
        .chain(OBS_HEADER.iter().copied())
        .collect();
    let rows: Vec<Vec<String>> = result
        .records
        .iter()
        .map(|rec| {
            let mut cells = series_cells(&rec.row);
            cells.extend(obs_cells(rec));
            cells
        })
        .collect();
    crate::csv::export(name, &header, &rows);
    if drqos_core::experiment::checked_mode() {
        println!(
            "(checked mode is ON: invariants re-validated after every churn event — \
             timings below are not representative)"
        );
    }
    let summary = result.runtime_summary(name);
    match record_runtime(&summary) {
        Ok(path) => println!(
            "({} points on {} threads in {:.2} s, {:.0} events/s — {})",
            summary.points,
            summary.threads,
            summary.wall_s,
            summary.events_per_sec,
            path.display()
        ),
        Err(e) => eprintln!("warning: could not record runtime for {name}: {e}"),
    }
}

// --------------------------------------------------------- runtime.json --

/// Aggregated timing for one sweep, as recorded in
/// `target/experiments/runtime.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSummary {
    /// Experiment name (`fig2`, `table1`, ...).
    pub name: String,
    /// Worker threads used.
    pub threads: usize,
    /// Sweep points.
    pub points: usize,
    /// Whole-sweep wall time in seconds.
    pub wall_s: f64,
    /// Simulated events per wall-clock second.
    pub events_per_sec: f64,
    /// Aggregated counters.
    pub obs: PointObs,
}

impl RuntimeSummary {
    /// Serializes the summary as a JSON object (hand-rolled — the offline
    /// container has no serde).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"threads\":{},\"points\":{},",
                "\"wall_s\":{:.6},\"events\":{},\"events_per_sec\":{:.1},",
                "\"attempted\":{},\"accepted\":{},\"rejected\":{},",
                "\"dropped\":{},\"failures\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_stale\":{}}}"
            ),
            self.name.replace(['"', '\\'], "_"),
            self.threads,
            self.points,
            self.wall_s,
            self.obs.events,
            self.events_per_sec,
            self.obs.attempted,
            self.obs.accepted,
            self.obs.rejected,
            self.obs.dropped,
            self.obs.failures,
            self.obs.cache_hits,
            self.obs.cache_misses,
            self.obs.cache_stale,
        )
    }
}

/// Records a sweep's summary under `target/experiments/runtime/` and
/// rebuilds the aggregate `target/experiments/runtime.json` from every
/// summary recorded so far (one entry per experiment × thread count, so a
/// `DRQOS_THREADS=1` run and a parallel run sit side by side for speedup
/// comparison).
///
/// # Errors
///
/// Returns any I/O error from directory creation, writing, or re-reading.
pub fn record_runtime(summary: &RuntimeSummary) -> io::Result<PathBuf> {
    let name: String = summary
        .name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    record_runtime_entry(&format!("{name}-{}t", summary.threads), &summary.to_json())
}

/// A held `runtime/.lock` file; dropping it releases the lock.
struct RuntimeLock {
    path: PathBuf,
}

impl Drop for RuntimeLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// How long an existing `.lock` may sit untouched before it is presumed
/// abandoned (a crashed writer) and broken.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(10);

/// Upper bound on waiting for the lock; no healthy writer holds it for
/// more than a few milliseconds.
const LOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// Acquires the runtime directory's lock file via `O_EXCL` creation,
/// retrying until [`LOCK_TIMEOUT`] and breaking locks older than
/// [`LOCK_STALE_AFTER`].
fn lock_runtime_dir(dir: &std::path::Path) -> io::Result<RuntimeLock> {
    let path = dir.join(".lock");
    let start = Instant::now(); // lint:allow(determinism-taint): lock staleness timing never reaches emitted bytes
    loop {
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(_) => return Ok(RuntimeLock { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let stale = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age > LOCK_STALE_AFTER);
                if stale {
                    let _ = fs::remove_file(&path);
                    continue;
                }
                if start.elapsed() > LOCK_TIMEOUT {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("timed out waiting for {}", path.display()),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Writes `content` to `path` atomically: a process-unique temp file in
/// the same directory, then a rename (readers never observe a torn file).
fn write_atomic(path: &std::path::Path, content: &str) -> io::Result<()> {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let tmp = path.with_file_name(format!(".{file_name}.{}.tmp", std::process::id()));
    fs::write(&tmp, content)?;
    fs::rename(&tmp, path)
}

/// Records one pre-rendered JSON object as
/// `target/experiments/runtime/<stem>.json` and rebuilds the aggregate
/// `runtime.json`. This is the shared sink for every runtime producer —
/// the sweep runner above and out-of-crate tools like `drqos-loadgen` —
/// so all entries land in one aggregate regardless of who wrote them.
///
/// Concurrent writers (the sweep runner and a service binary finishing at
/// the same time, or parallel tests) are serialized through a lock file:
/// the whole write-entry-then-rebuild sequence runs under `runtime/.lock`,
/// so the last writer's aggregate always reflects every recorded entry
/// and `runtime.json` is never a lost update or a torn interleaving.
///
/// `stem` is sanitized to `[A-Za-z0-9_-]`; `json` must be one complete
/// JSON object (it is embedded verbatim, never parsed).
///
/// # Errors
///
/// Returns any I/O error from directory creation, locking, writing, or
/// re-reading.
pub fn record_runtime_entry(stem: &str, json: &str) -> io::Result<PathBuf> {
    record_runtime_entry_in(&crate::csv::default_dir(), stem, json)
}

/// [`record_runtime_entry`] with an explicit experiments directory.
///
/// The default resolves `target/experiments` relative to the current
/// working directory, which is right for the sweep binaries (run from the
/// workspace root) but wrong for `cargo bench`/`cargo test`, whose
/// processes start in the *package* root — a bench that wants its entry
/// in the canonical workspace aggregate should anchor explicitly, e.g.
/// via `CARGO_MANIFEST_DIR`.
pub fn record_runtime_entry_in(experiments: &Path, stem: &str, json: &str) -> io::Result<PathBuf> {
    let dir = experiments.join("runtime");
    fs::create_dir_all(&dir)?;
    let stem: String = stem
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let lock = lock_runtime_dir(&dir)?;
    write_atomic(&dir.join(format!("{stem}.json")), json)?;
    // Rebuild the aggregate from the per-entry files (each holds one
    // complete JSON object, embedded verbatim — no JSON parsing needed).
    let mut entries: Vec<(String, String)> = Vec::new();
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "json") {
            entries.push((
                entry.file_name().to_string_lossy().into_owned(),
                fs::read_to_string(&path)?,
            ));
        }
    }
    entries.sort();
    let body: Vec<String> = entries.into_iter().map(|(_, json)| json).collect();
    let aggregate = experiments.join("runtime.json");
    write_atomic(
        &aggregate,
        &format!("{{\"experiments\":[\n{}\n]}}\n", body.join(",\n")),
    )?;
    drop(lock);
    Ok(aggregate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_bijective_sample_and_avalanches() {
        // Distinct inputs give distinct outputs (bijection spot check)...
        let outs: std::collections::BTreeSet<u64> = (0..1_000).map(splitmix64).collect();
        assert_eq!(outs.len(), 1_000);
        // ...and flipping one input bit flips roughly half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((20..=44).contains(&flipped), "weak avalanche: {flipped}");
    }

    #[test]
    fn derive_seed_never_returns_base_verbatim() {
        // The old `seed ^ 0` bug: the first row reused the base seed.
        for base in [0u64, 7, 2001, u64::MAX] {
            assert_ne!(derive_seed(base, 0), base);
        }
        // Nearby salts must not collide or correlate trivially.
        let s: std::collections::BTreeSet<u64> = (0..100).map(|i| derive_seed(2001, i)).collect();
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn sweep_preserves_input_order_and_count() {
        let points: Vec<usize> = (0..37).collect();
        let result = sweep(99, &points, |&p, seed| {
            (
                (p, seed),
                PointObs {
                    events: 1,
                    ..PointObs::default()
                },
            )
        });
        assert_eq!(result.records.len(), 37);
        for (i, rec) in result.records.iter().enumerate() {
            assert_eq!(rec.row.0, i, "row order must match input order");
            assert_eq!(rec.row.1, derive_seed(99, i as u64));
        }
        assert_eq!(result.total_events(), 37);
    }

    #[test]
    fn sweep_rows_independent_of_thread_count() {
        // The determinism contract behind "CSV byte-identical whether
        // DRQOS_THREADS=1 or unset": rows depend only on (seed, points).
        let points: Vec<u64> = (0..16).collect();
        let run = |threads: usize| -> Vec<u64> {
            // thread_count() reads the environment at sweep start; emulate
            // both ends of the range by clamping through the point count.
            let _ = threads;
            sweep(5, &points, |&p, seed| {
                (splitmix64(p ^ seed), PointObs::default())
            })
            .into_rows()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn sweep_scales_with_threads() {
        // Speedup smoke test: spin-wait points parallelize ~linearly. Only
        // asserted when the machine actually has cores to spare.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 || drqos_core::env::threads().is_some() {
            return;
        }
        let points: Vec<usize> = (0..8).collect();
        let spin = |ms: u64| {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(ms) {
                std::hint::spin_loop();
            }
        };
        let parallel = sweep(1, &points, |_, _| {
            spin(20);
            ((), PointObs::default())
        });
        // Sequential reference: same work on one thread, timed directly.
        let t0 = Instant::now();
        for _ in &points {
            spin(20);
        }
        let sequential = t0.elapsed();
        assert!(
            parallel.wall < sequential,
            "parallel sweep ({:?}) should beat sequential ({:?}) on {cores} cores",
            parallel.wall,
            sequential
        );
    }

    #[test]
    fn runtime_summary_serializes_and_records() {
        let points: Vec<usize> = (0..3).collect();
        let result = sweep(7, &points, |&p, _| {
            (
                p,
                PointObs {
                    events: 10,
                    attempted: 5,
                    accepted: 4,
                    rejected: 1,
                    cache_hits: 3,
                    cache_misses: 2,
                    cache_stale: 1,
                    ..PointObs::default()
                },
            )
        });
        let summary = result.runtime_summary("selftest");
        let json = summary.to_json();
        assert!(json.contains("\"name\":\"selftest\""));
        assert!(json.contains("\"events\":30"));
        assert!(json.contains("\"accepted\":12"));
        assert!(json.contains("\"cache_hits\":9"));
        assert!(json.contains("\"cache_misses\":6"));
        assert!(json.contains("\"cache_stale\":3"));
        let path = record_runtime(&summary).expect("runtime.json written");
        let content = fs::read_to_string(&path).expect("aggregate readable");
        assert!(content.contains("\"experiments\":["));
        assert!(content.contains("\"name\":\"selftest\""));
    }

    #[test]
    fn concurrent_runtime_entries_are_not_lost() {
        // The read-modify-write race this guards against: two writers
        // finish together, each writes its entry and rebuilds the
        // aggregate, and the slower rebuild (which never saw the faster
        // writer's entry) overwrites the aggregate, losing it. With the
        // lock file the whole sequence is serial, so the aggregate must
        // contain every entry no matter the interleaving.
        // A process-unique scratch dir keeps the test out of the real
        // `target/experiments` aggregate.
        let base = std::env::temp_dir().join(format!("drqos-locktest-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        let names: Vec<String> = (0..2).map(|i| format!("locktest-writer-{i}")).collect();
        std::thread::scope(|scope| {
            for name in &names {
                let base = &base;
                scope.spawn(move || {
                    for round in 0..20 {
                        record_runtime_entry_in(
                            base,
                            name,
                            &format!("{{\"name\":\"{name}\",\"round\":{round}}}"),
                        )
                        .expect("record under contention");
                    }
                });
            }
        });
        let aggregate = fs::read_to_string(base.join("runtime.json")).unwrap();
        for name in &names {
            assert!(
                aggregate.contains(&format!("\"name\":\"{name}\"")),
                "aggregate lost {name}"
            );
        }
        // The aggregate is one well-formed object, not a torn interleaving.
        assert!(aggregate.starts_with("{\"experiments\":[\n"));
        assert!(aggregate.ends_with("\n]}\n"));
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn obs_cells_match_header_width() {
        let record = PointRecord {
            row: (),
            obs: PointObs::default(),
            wall: Duration::from_millis(12),
        };
        assert_eq!(obs_cells(&record).len(), OBS_HEADER.len());
    }
}
