//! A dependency-free micro-benchmark harness.
//!
//! The container this workspace builds in has no access to crates.io, so
//! Criterion cannot be used. This module provides the small slice of
//! Criterion's API the benches need — `Criterion::benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`, `sample_size` — backed by
//! plain `std::time::Instant` timing. Results (median / mean ns per
//! iteration) are printed to stdout.
//!
//! It is intentionally minimal: no statistical outlier analysis, no
//! warm-up calibration beyond a fixed fraction, no plotting. For the
//! comparisons the benches make (algorithm A vs. algorithm B on the same
//! machine in the same process) median-of-N is adequate.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Mirrors `criterion::BatchSize`; only the variants the benches use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output (e.g. a loaded network).
    LargeInput,
}

/// Entry point handed to each bench function (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 50,
        }
    }
}

/// A named collection of measurements sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to collect per bench (minimum 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Runs one measurement. The closure receives a [`Bencher`] and must
    /// call [`Bencher::iter`] or [`Bencher::iter_batched`].
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id, &b.samples);
        self
    }

    /// Ends the group (retained for Criterion API compatibility).
    pub fn finish(self) {}
}

/// Collects timing samples for one measurement.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly; one sample per call.
    ///
    /// Reports exactly `sample_size` samples: warm-up runs are never
    /// timed, and anything a previous `iter`/`iter_batched` call on the
    /// same bencher recorded is discarded — with sub-timer-granularity
    /// routines, leaked warm-up zeros used to drag the median to 0 ns.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        self.samples.clear();
        // Warm-up: a few untimed runs to populate caches / branch state.
        for _ in 0..(self.sample_size / 10).clamp(1, 5) {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is
    /// excluded. Like [`Bencher::iter`], reports exactly `sample_size`
    /// samples per call.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        self.samples.clear();
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let mut nanos: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
    nanos.sort_unstable();
    let median = nanos[nanos.len() / 2];
    let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;
    println!(
        "{group}/{id}: median {} mean {} ({} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        nanos.len()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `main` from the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("microbench/self_test");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        group.finish();
        assert!(calls >= 5, "routine must run at least sample_size times");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("microbench/self_test_batched");
        group.sample_size(5);
        let mut setups = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert_eq!(setups, 6, "one warm-up + five timed setups");
    }

    #[test]
    fn iter_reports_exactly_sample_size_samples() {
        // The routine here finishes well under timer granularity — the
        // case where stray warm-up samples used to leak into the report.
        let mut b = Bencher {
            sample_size: 7,
            samples: Vec::new(),
        };
        b.iter(|| black_box(1u32) + 1);
        assert_eq!(b.samples.len(), 7);
        // A second call on the same bencher must not accumulate.
        b.iter(|| black_box(2u32) + 2);
        assert_eq!(b.samples.len(), 7);
        let mut batched = Bencher {
            sample_size: 6,
            samples: Vec::new(),
        };
        batched.iter_batched(|| 3u8, |x| x, BatchSize::SmallInput);
        assert_eq!(batched.samples.len(), 6);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(950), "950 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
