//! Minimal CSV export for the experiment binaries.
//!
//! Each figure/table regenerator writes its rows to
//! `target/experiments/<name>.csv` so the series can be re-plotted with
//! any external tool; values are plain numbers, `NaN` is written as an
//! empty cell.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The default export directory (`target/experiments`).
pub fn default_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// Formats one CSV cell: floats with full precision, NaN as empty.
pub fn cell(v: f64) -> String {
    if v.is_nan() {
        String::new()
    } else {
        // lint:allow(float-format): shortest-round-trip IS the CSV cell contract — pinning a precision would truncate data
        format!("{v}")
    }
}

/// Writes `header` + `rows` to `path`, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from directory creation or writing, and
/// `InvalidInput` when a row's width differs from the header's (a malformed
/// table must not be half-written to disk).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    for (i, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "CSV row width mismatch at row {i}: {} cells vs {} header columns",
                    row.len(),
                    header.len()
                ),
            ));
        }
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut file = fs::File::create(path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

/// Writes rows and prints where they went (best-effort: export failures
/// warn on stderr rather than aborting an experiment that already ran).
pub fn export(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = default_dir().join(format!("{name}.csv"));
    match write_csv(&path, header, rows) {
        Ok(()) => println!("\n(series written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("drqos_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = std::env::temp_dir().join("drqos_csv_mkdir/nested/deep");
        std::fs::remove_dir_all(std::env::temp_dir().join("drqos_csv_mkdir")).ok();
        let path = dir.join("t.csv");
        write_csv(&path, &["x"], &[vec!["1".into()]]).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(std::env::temp_dir().join("drqos_csv_mkdir")).ok();
    }

    #[test]
    fn cell_formats_nan_as_empty() {
        assert_eq!(cell(f64::NAN), "");
        assert_eq!(cell(1.5), "1.5");
    }

    #[test]
    fn row_width_mismatch_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join("drqos_csv_test2");
        let path = dir.join("t.csv");
        let err = write_csv(&path, &["a", "b"], &[vec!["1".into()]])
            .expect_err("short row must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(
            err.to_string().contains("row 0"),
            "error names the row: {err}"
        );
        assert!(!path.exists(), "nothing may be written on invalid input");
        std::fs::remove_dir_all(&dir).ok();
    }
}
