//! Regenerates the paper's **Figure 3**: average bandwidth as the number
//! of nodes varies from 100 to 500 with a fixed load of 3000
//! DR-connections (Waxman parameters unchanged → edge count grows with the
//! network, plotted as the paper's upper dotted line).
//!
//! Run with `cargo run --release -p drqos-bench --bin fig3`.
//! Set `DRQOS_THREADS=n` to bound the sweep's worker count.

use drqos_analysis::report::{fmt_f64, AsciiChart, TextTable};
use drqos_bench::runner::export_sweep;
use drqos_bench::{csv, fig3};

fn main() {
    let nodes = [100, 200, 300, 400, 500];
    let result = fig3(&nodes, 3_000, 2_000, 2001);
    let mut table = TextTable::new(["nodes", "edges", "simulation (Kbps)", "Markov model (Kbps)"]);
    for r in result.rows() {
        table.row([
            r.nodes.to_string(),
            r.edges.to_string(),
            fmt_f64(r.sim, 1),
            fmt_f64(r.analytic, 1),
        ]);
    }
    println!("Figure 3 — average bandwidth vs. number of nodes");
    println!("(3000 DR-connections, Waxman model at constant density)\n");
    print!("{}", table.render());

    let chart = AsciiChart::new(10)
        .y_range(100.0, 520.0)
        .series('s', &result.rows().map(|r| r.sim).collect::<Vec<_>>())
        .series('x', &result.rows().map(|r| r.analytic).collect::<Vec<_>>());
    println!("\ns = simulation, x = Markov model   (x-axis: 100..500 nodes)");
    print!("{}", chart.render());

    export_sweep(
        "fig3",
        &["nodes", "edges", "simulation_kbps", "model_kbps"],
        &result,
        |r| {
            vec![
                r.nodes.to_string(),
                r.edges.to_string(),
                csv::cell(r.sim),
                csv::cell(r.analytic),
            ]
        },
    );
}
