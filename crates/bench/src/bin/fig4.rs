//! Regenerates the paper's **Figure 4**: average bandwidth as the link
//! failure rate γ varies from 10⁻⁷ to 10⁻², with 2000 and 3000 real-time
//! channels, using the 9-state Markov chain.
//!
//! The paper's finding to reproduce: "no effect of link failures on the
//! average bandwidth since the link failure rate is too small compared to
//! the DR-connection request arrival and termination rates."
//!
//! Run with `cargo run --release -p drqos-bench --bin fig4`.
//! Set `DRQOS_THREADS=n` to bound the sweep's worker count.

use drqos_analysis::report::{fmt_f64, AsciiChart, TextTable};
use drqos_bench::runner::export_sweep;
use drqos_bench::{csv, fig4};

fn main() {
    let gammas = [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2];
    let result = fig4(&gammas, 2_000, 2001);
    let mut table = TextTable::new([
        "failure rate",
        "sim 2000ch",
        "model 2000ch",
        "sim 3000ch",
        "model 3000ch",
    ]);
    for r in result.rows() {
        table.row([
            format!("{:.0e}", r.gamma),
            fmt_f64(r.sim2000, 1),
            fmt_f64(r.analytic2000, 1),
            fmt_f64(r.sim3000, 1),
            fmt_f64(r.analytic3000, 1),
        ]);
    }
    println!("Figure 4 — average bandwidth (Kbps) vs. link failure rate");
    println!("(100-node Waxman network, 9-state chain, λ = μ = 0.001)\n");
    print!("{}", table.render());

    let chart = AsciiChart::new(10)
        .y_range(100.0, 520.0)
        .series('2', &result.rows().map(|r| r.sim2000).collect::<Vec<_>>())
        .series('3', &result.rows().map(|r| r.sim3000).collect::<Vec<_>>());
    println!("\n2 = 2000 channels, 3 = 3000 channels   (x-axis: γ = 1e-7..1e-2, log)");
    print!("{}", chart.render());
    println!("Flat lines = the paper's conclusion: γ ≪ λ has no visible effect.");

    export_sweep(
        "fig4",
        &["gamma", "sim2000", "model2000", "sim3000", "model3000"],
        &result,
        |r| {
            vec![
                format!("{:e}", r.gamma),
                csv::cell(r.sim2000),
                csv::cell(r.analytic2000),
                csv::cell(r.sim3000),
                csv::cell(r.analytic3000),
            ]
        },
    );
}
