//! Regenerates the paper's **Table 1**: average bandwidth of the Markov
//! chains with different numbers of states (5-state Δ = 100 Kbps vs.
//! 9-state Δ = 50 Kbps), on the Random (Waxman) and Tier (transit-stub)
//! networks.
//!
//! The paper's observation to reproduce: the increment size does not
//! change the average bandwidth, and the Tier network accepts far fewer
//! connections than the attempt count in the left column.
//!
//! Run with `cargo run --release -p drqos-bench --bin table1`.
//! Set `DRQOS_THREADS=n` to bound the sweep's worker count.

use drqos_analysis::report::{fmt_f64, TextTable};
use drqos_bench::runner::export_sweep;
use drqos_bench::{csv, table1};

fn main() {
    let points = [1_000, 2_000, 3_000, 4_000, 5_000];
    let result = table1(&points, 2_000, 2001);
    let mut table = TextTable::new([
        "No. of channels",
        "Random 5-state",
        "Random 9-state",
        "Tier 5-state",
        "Tier 9-state",
        "Tier active",
    ]);
    for r in result.rows() {
        table.row([
            r.nchan.to_string(),
            fmt_f64(r.random5, 1),
            fmt_f64(r.random9, 1),
            fmt_f64(r.tier5, 1),
            fmt_f64(r.tier9, 1),
            r.tier_active.to_string(),
        ]);
    }
    println!("Table 1 — average bandwidth (Kbps) of Markov chains with");
    println!("different numbers of states, Random vs. Tier networks\n");
    print!("{}", table.render());
    println!("\nNote: the left column counts attempted set-ups; on the Tier");
    println!("network most are rejected (see the 'Tier active' column),");
    println!("matching the paper's remark under Table 1.");

    export_sweep(
        "table1",
        &[
            "nchan",
            "random5",
            "random9",
            "tier5",
            "tier9",
            "tier_active",
        ],
        &result,
        |r| {
            vec![
                r.nchan.to_string(),
                csv::cell(r.random5),
                csv::cell(r.random9),
                csv::cell(r.tier5),
                csv::cell(r.tier9),
                r.tier_active.to_string(),
            ]
        },
    );
}
