//! Ablation beyond the paper's tables: what elastic QoS actually buys over
//! the rigid single-value baseline (the Han–Shin scheme the paper
//! improves), and how the two adaptation policies compare.
//!
//! Run with `cargo run --release -p drqos-bench --bin ablation`.
//! Set `DRQOS_THREADS=n` to bound the sweep's worker count.

use drqos_analysis::report::{fmt_f64, TextTable};
use drqos_bench::runner::export_sweep;
use drqos_bench::{ablation, csv, dependability};

fn main() {
    let points = [500, 1_500, 3_000, 5_000];
    let result = ablation(&points, 1_500, 2001);
    let mut table = TextTable::new([
        "DR-connections",
        "elastic avg (Kbps)",
        "elastic accepted",
        "rigid avg (Kbps)",
        "rigid accepted",
        "max-utility avg (Kbps)",
    ]);
    for r in result.rows() {
        table.row([
            r.nchan.to_string(),
            fmt_f64(r.elastic_avg, 1),
            r.elastic_accepted.to_string(),
            fmt_f64(r.rigid_avg, 1),
            r.rigid_accepted.to_string(),
            fmt_f64(r.max_utility_avg, 1),
        ]);
    }
    println!("Ablation — elastic QoS vs. rigid single-value QoS");
    println!("(100-node Waxman network, Δ = 50 Kbps, equal utilities)\n");
    print!("{}", table.render());
    println!("\nRigid channels always sit at their single reserved value;");
    println!("elastic channels exploit idle and backup bandwidth, which is");
    println!("the paper's motivating claim (Section 1).");

    export_sweep(
        "ablation",
        &[
            "nchan",
            "elastic_avg",
            "elastic_accepted",
            "rigid_avg",
            "rigid_accepted",
            "max_utility_avg",
        ],
        &result,
        |r| {
            vec![
                r.nchan.to_string(),
                csv::cell(r.elastic_avg),
                r.elastic_accepted.to_string(),
                csv::cell(r.rigid_avg),
                r.rigid_accepted.to_string(),
                csv::cell(r.max_utility_avg),
            ]
        },
    );

    // Second ablation: the dependability payoff of backup channels under a
    // failure storm (γ = 2λ, slow repairs), including the multi-backup
    // extension of the Han–Shin scheme.
    let result = dependability(&[0, 1, 2], 2_000, 1_500, 2001);
    let mut table = TextTable::new([
        "backups/connection",
        "accepted",
        "dropped",
        "carried at end",
        "failures",
        "avg bandwidth (Kbps)",
    ]);
    for r in result.rows() {
        table.row([
            r.backup_count.to_string(),
            r.accepted.to_string(),
            r.dropped.to_string(),
            r.active_end.to_string(),
            r.failures.to_string(),
            fmt_f64(r.avg_bandwidth, 1),
        ]);
    }
    println!("\nDependability under a failure storm (γ = 2λ, mean repair 5000 s)\n");
    print!("{}", table.render());
    println!("\nWithout backups every failure kills its channels and the carried");
    println!("load collapses; with backups connections ride out the storm. A second");
    println!("backup covers the window while the first is being rebuilt, at the");
    println!("price of extra reservations (lower average bandwidth).");

    export_sweep(
        "dependability",
        &[
            "backup_count",
            "accepted",
            "dropped",
            "carried_end",
            "failures",
            "avg_bandwidth_kbps",
        ],
        &result,
        |r| {
            vec![
                r.backup_count.to_string(),
                r.accepted.to_string(),
                r.dropped.to_string(),
                r.active_end.to_string(),
                r.failures.to_string(),
                csv::cell(r.avg_bandwidth),
            ]
        },
    );
}
