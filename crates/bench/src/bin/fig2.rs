//! Regenerates the paper's **Figure 2**: average bandwidth of a
//! DR-connection as the number of DR-connections grows (100-node random
//! network, λ = μ = 0.001, γ = 0, 9-state Markov chain, Δ = 50 Kbps).
//!
//! Series: simulation (solid line in the paper), the Markov model (dashed,
//! × marks), and the ideal average `BW·E/(N·avg_hops)` (upper dotted).
//!
//! Run with `cargo run --release -p drqos-bench --bin fig2`.
//! Set `DRQOS_THREADS=n` to bound the sweep's worker count.

use drqos_analysis::report::{fmt_f64, AsciiChart, TextTable};
use drqos_bench::runner::export_sweep;
use drqos_bench::{csv, fig2};

fn main() {
    let points: Vec<usize> = (1..=20).map(|i| i * 250).collect();
    let result = fig2(&points, 2_000, 2001);
    let mut table = TextTable::new([
        "DR-connections",
        "active",
        "simulation (Kbps)",
        "Markov model (Kbps)",
        "ideal (Kbps)",
    ]);
    for r in result.rows() {
        table.row([
            r.nchan.to_string(),
            r.active.to_string(),
            fmt_f64(r.sim, 1),
            fmt_f64(r.analytic, 1),
            fmt_f64(r.ideal, 1),
        ]);
    }
    println!("Figure 2 — average bandwidth vs. number of DR-connections");
    println!("(100-node Waxman network, 354-edge calibration, Δ = 50 Kbps)\n");
    print!("{}", table.render());

    let chart = AsciiChart::new(14)
        .y_range(100.0, 520.0)
        .series('s', &result.rows().map(|r| r.sim).collect::<Vec<_>>())
        .series('x', &result.rows().map(|r| r.analytic).collect::<Vec<_>>())
        .series('.', &result.rows().map(|r| r.ideal).collect::<Vec<_>>());
    println!("\ns = simulation, x = Markov model, . = ideal   (x-axis: 250..5000)");
    print!("{}", chart.render());

    export_sweep(
        "fig2",
        &[
            "nchan",
            "active",
            "simulation_kbps",
            "model_kbps",
            "ideal_kbps",
        ],
        &result,
        |r| {
            vec![
                r.nchan.to_string(),
                r.active.to_string(),
                csv::cell(r.sim),
                csv::cell(r.analytic),
                csv::cell(r.ideal),
            ]
        },
    );
}
