//! `trajectory` — the recorded perf trajectory (`bench trajectory`).
//!
//! Default mode runs the full microbench suite (contended-link admission
//! single vs. batched, churn harness, loadgen-shaped closed loop) and
//! appends one dated entry to `BENCH_trajectory.json` at the repository
//! root; `--check` runs the quick admission pair and validates both the
//! fresh speedup and the committed file (CI's `bench-trajectory` job).
//!
//! ```text
//! trajectory [--entry NAME] [--file PATH] [--quick] [--check] [--dry-run]
//! ```

use drqos_bench::trajectory::{
    self, check_committed, check_fresh, check_fresh_wave, today_utc, TrajectoryConfig,
    TrajectoryEntry,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    entry: String,
    file: PathBuf,
    quick: bool,
    check: bool,
    dry_run: bool,
}

/// The committed trajectory file at the repository root, anchored via the
/// crate manifest so the binary works from any working directory.
fn default_file() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trajectory.json")
}

const USAGE: &str =
    "usage: trajectory [--entry NAME] [--file PATH] [--quick] [--check] [--dry-run]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        entry: format!("run-{}", today_utc()),
        file: default_file(),
        quick: false,
        check: false,
        dry_run: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--entry" => args.entry = value(flag)?,
            "--file" => args.file = PathBuf::from(value(flag)?),
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--dry-run" => args.dry_run = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run_check(args: &Args) -> ExitCode {
    let cfg = TrajectoryConfig::quick();
    println!("trajectory --check: measuring the quick admission pairs ...");
    let single = trajectory::bench_admission_single(&cfg);
    let batch = trajectory::bench_admission_batch(&cfg);
    let wave_mono = trajectory::bench_admission_wave_mono(&cfg);
    let wave_shard = trajectory::bench_admission_wave_shard(&cfg);
    let mut failed = false;
    match check_fresh(&single, &batch) {
        Ok(line) => println!("ok: {line}"),
        Err(e) => {
            eprintln!("FAIL: {e}");
            failed = true;
        }
    }
    match check_fresh_wave(&wave_mono, &wave_shard) {
        Ok(line) => println!("ok: {line}"),
        Err(e) => {
            eprintln!("FAIL: {e}");
            failed = true;
        }
    }
    match check_committed(&args.file) {
        Ok(report) => {
            for line in report {
                println!("ok: {line}");
            }
        }
        Err(e) => {
            eprintln!("FAIL: {e}");
            failed = true;
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        println!("trajectory check passed ({})", args.file.display());
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.check {
        return run_check(&args);
    }
    let cfg = if args.quick {
        TrajectoryConfig::quick()
    } else {
        TrajectoryConfig::full()
    };
    println!(
        "trajectory: running {} benches (entry {:?}) ...",
        if args.quick { "quick" } else { "full" },
        args.entry
    );
    let benches = trajectory::run_benches(&cfg);
    for b in &benches {
        println!(
            "  {:>17}: {:>9.0} ops/s  p50 {:>8} ns  p95 {:>8} ns  p99 {:>8} ns  ({} ops)",
            b.name, b.ops_per_sec, b.p50_ns, b.p95_ns, b.p99_ns, b.ops
        );
    }
    if let (Some(single), Some(batch)) = (
        benches.iter().find(|b| b.name == "admission_single"),
        benches.iter().find(|b| b.name == "admission_batch"),
    ) {
        match check_fresh(single, batch) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("FAIL: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if let (Some(mono), Some(shard)) = (
        benches.iter().find(|b| b.name == "admission_wave_mono"),
        benches.iter().find(|b| b.name == "admission_wave_shard4"),
    ) {
        match check_fresh_wave(mono, shard) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("FAIL: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let entry = TrajectoryEntry {
        entry: args.entry.clone(),
        date: today_utc(),
        benches,
    };
    if args.dry_run {
        println!("dry run; not writing {}", args.file.display());
        println!("{}", entry.to_json());
        return ExitCode::SUCCESS;
    }
    match trajectory::append_entry(&args.file, &entry) {
        Ok(()) => {
            println!("appended entry {:?} to {}", args.entry, args.file.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trajectory: writing {}: {e}", args.file.display());
            ExitCode::from(1)
        }
    }
}
