//! `scenario_sweep` — the paper's sweeps re-run under adversarial
//! scenarios (flash crowd, diurnal modulation, Pareto holding times,
//! SRLG correlated failures) with a per-scenario model-vs-sim divergence
//! column.
//!
//! The Markov model is calibrated for flat Poisson arrivals, memoryless
//! holding, and independent link failures; this binary quantifies what
//! each departure from that regime costs the model. Two sweeps run: the
//! Figure 2 load sweep and the Figure 3 network-size sweep, each under
//! every [`ScenarioKind`]. The baseline rows anchor the divergence
//! column — the adversarial rows show where the model loses its grip.
//!
//! ```text
//! scenario_sweep [--quick]
//! ```
//!
//! `--quick` runs the scaled-down CI configuration (fewer load points,
//! shorter churn, no scaling sweep). Set `DRQOS_THREADS=n` to bound the
//! sweep's worker count; the series columns are byte-identical at any
//! thread count.

use drqos_analysis::report::{fmt_f64, TextTable};
use drqos_bench::runner::{export_sweep, Sweep};
use drqos_bench::{csv, scenario_scaling, scenario_sweep, ScenarioSweepRow};

fn print_and_export(title: &str, name: &str, x_label: &str, result: &Sweep<ScenarioSweepRow>) {
    let mut table = TextTable::new([
        "scenario",
        x_label,
        "active",
        "dropped",
        "simulation (Kbps)",
        "Markov model (Kbps)",
        "divergence",
    ]);
    for r in result.rows() {
        table.row([
            r.scenario.to_string(),
            r.nchan.to_string(),
            r.active.to_string(),
            r.dropped.to_string(),
            fmt_f64(r.sim, 1),
            fmt_f64(r.analytic, 1),
            if r.divergence.is_nan() {
                "-".to_string()
            } else {
                format!("{:.1}%", r.divergence * 100.0)
            },
        ]);
    }
    println!("{title}\n");
    print!("{}", table.render());

    export_sweep(
        name,
        &[
            "scenario",
            x_label,
            "active",
            "dropped",
            "simulation_kbps",
            "model_kbps",
            "divergence",
        ],
        result,
        |r| {
            vec![
                r.scenario.to_string(),
                r.nchan.to_string(),
                r.active.to_string(),
                r.dropped.to_string(),
                csv::cell(r.sim),
                csv::cell(r.analytic),
                csv::cell(r.divergence),
            ]
        },
    );
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let (points, churn) = if quick {
        (vec![150usize, 400], 400)
    } else {
        (vec![500usize, 1_500, 3_000, 4_500], 2_000)
    };
    let result = scenario_sweep(&points, churn, 2001);
    print_and_export(
        "Scenario sweep — Figure 2 load points under every adversarial scenario\n\
         (100-node Waxman network, Δ = 50 Kbps; divergence = |model − sim| / sim)",
        "scenario_sweep",
        "nchan",
        &result,
    );

    if !quick {
        let scaling = scenario_scaling(&[50, 100, 150], 2_000, 1_000, 2001);
        println!();
        print_and_export(
            "Scenario scaling — Figure 3 network sizes under every adversarial scenario\n\
             (constant-density Waxman growth, 2000 connections offered)",
            "scenario_scaling",
            "nodes",
            &scaling,
        );
    }
}
