//! The recorded performance trajectory (`BENCH_trajectory.json`).
//!
//! ROADMAP item 3's complaint was that "measurably faster" is
//! unenforceable without committed history. This module fixes that: the
//! `trajectory` binary runs the microbench suite — contended-link
//! admission (single-request vs. batched), wave admission on the
//! transit-stub hierarchy (monolithic vs. sharded), the churn experiment
//! harness, and a loadgen-shaped closed loop — and appends one dated
//! entry of ops/sec + p50/p95/p99 per bench to `BENCH_trajectory.json`
//! at the repository root. CI's `bench-trajectory` job re-runs the
//! admission pairs on a quick config (`--check`) and fails if batched
//! admission no longer beats single-request admission ≥ 2×, if the
//! sharded wave no longer beats the monolithic wave, or if the committed
//! trajectory regresses > 10% between any two consecutive entries.
//!
//! The file format is deliberately line-oriented (one JSON object per
//! entry line inside a `{"trajectory":[...]}` wrapper) so diffs show one
//! added line per PR and the checker can read it without a JSON parser —
//! the offline container has no serde.
//!
//! The benches live here rather than in `drqos-service` because the
//! dependency arrow points the other way (`drqos-service` → `drqos-bench`
//! for the runtime sink); the "loadgen" bench therefore reproduces the
//! load generator's closed-loop establish/release op mix against the
//! in-process [`Network`] — the admission work that dominates the
//! daemon's hot path — rather than driving TCP.

use drqos_cluster::ClusterSim;
use drqos_core::experiment::{run_churn, ExperimentConfig};
use drqos_core::network::{EstablishRequest, Network, NetworkConfig};
use drqos_core::qos::ElasticQos;
use drqos_core::scenario::{run_scenario_churn, Scenario, ScenarioKind};
use drqos_core::{ConnectionId, ShardedNetwork};
use drqos_sim::rng::Rng;
use drqos_topology::graph::NodeId;
use drqos_topology::regular;
use std::fs;
use std::io;
use std::path::Path;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

// ------------------------------------------------------------- records --

/// One microbench measurement: throughput plus per-op tail latency.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Bench name (`admission_single`, `admission_batch`, `churn`,
    /// `loadgen_loop`).
    pub name: String,
    /// Operations timed.
    pub ops: u64,
    /// Total timed wall seconds (setup excluded).
    pub wall_s: f64,
    /// Operations per timed second.
    pub ops_per_sec: f64,
    /// Median per-op latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile per-op latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile per-op latency in nanoseconds.
    pub p99_ns: u64,
}

impl BenchRecord {
    /// Folds raw per-op samples into a record.
    fn from_samples(name: &str, mut samples_ns: Vec<u64>) -> Self {
        samples_ns.sort_unstable();
        let ops = samples_ns.len() as u64;
        let wall_s = samples_ns.iter().sum::<u64>() as f64 / 1e9;
        BenchRecord {
            name: name.to_string(),
            ops,
            wall_s,
            ops_per_sec: if wall_s > 0.0 {
                ops as f64 / wall_s
            } else {
                0.0
            },
            p50_ns: quantile_ns(&samples_ns, 0.50),
            p95_ns: quantile_ns(&samples_ns, 0.95),
            p99_ns: quantile_ns(&samples_ns, 0.99),
        }
    }

    /// Serializes the record as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"ops\":{},\"wall_s\":{:.6},",
                "\"ops_per_sec\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}"
            ),
            self.name.replace(['"', '\\'], "_"),
            self.ops,
            self.wall_s,
            self.ops_per_sec,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
        )
    }
}

/// Nearest-rank quantile over pre-sorted nanosecond samples.
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One dated trajectory entry: a label (typically the PR) plus every
/// bench measured under it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Entry label, e.g. `pr6`.
    pub entry: String,
    /// ISO date the entry was recorded.
    pub date: String,
    /// The measurements.
    pub benches: Vec<BenchRecord>,
}

impl TrajectoryEntry {
    /// Serializes the entry as one JSON object on a single line (the
    /// unit of diff in `BENCH_trajectory.json`).
    pub fn to_json(&self) -> String {
        let benches: Vec<String> = self.benches.iter().map(BenchRecord::to_json).collect();
        format!(
            "{{\"entry\":\"{}\",\"date\":\"{}\",\"benches\":[{}]}}",
            self.entry.replace(['"', '\\'], "_"),
            self.date.replace(['"', '\\'], "_"),
            benches.join(",")
        )
    }
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days; no chrono in the
/// offline container).
pub fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

// -------------------------------------------------------------- benches --

/// Sizing knobs for one trajectory run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajectoryConfig {
    /// Contended establishes per admission round.
    pub requests: usize,
    /// Admission rounds (each on a fresh network).
    pub rounds: usize,
    /// Batch size for the batched admission bench.
    pub batch: usize,
    /// Warm-up connections for the churn bench.
    pub churn_connections: usize,
    /// Churn events for the churn bench.
    pub churn_events: usize,
    /// Ops in the closed-loop (loadgen-shaped) bench.
    pub loop_ops: usize,
    /// Base seed.
    pub seed: u64,
}

impl TrajectoryConfig {
    /// The recorded-entry configuration.
    pub fn full() -> Self {
        Self {
            requests: 192,
            rounds: 20,
            batch: 16,
            churn_connections: 200,
            churn_events: 2_000,
            loop_ops: 4_000,
            seed: 2001,
        }
    }

    /// The CI `--check` configuration: same shape, a fraction of the
    /// samples.
    pub fn quick() -> Self {
        Self {
            requests: 160,
            rounds: 4,
            churn_connections: 50,
            churn_events: 200,
            loop_ops: 500,
            ..Self::full()
        }
    }
}

/// The contended-link workload: every request crosses the same ring, so
/// each admission retreats (and later refills) every earlier connection —
/// the worst case for sequential fill work and the best case for the
/// batch's deferred-fill rule.
fn contended_requests(n: usize) -> Vec<EstablishRequest> {
    // A fine Δ gives the elastic range many levels, so each fill pass
    // does real redistribution work — the paper's small-increment end.
    let qos = ElasticQos::paper_video(25);
    (0..n)
        .map(|i| EstablishRequest {
            // Alternate the two antipodal pairs so both ring directions
            // stay hot; all requests still share links with each other.
            src: NodeId((i % 2) * 3),
            dst: NodeId(3 - (i % 2) * 3),
            qos,
        })
        .collect()
}

fn fresh_ring() -> Network {
    // Capacity sized so the whole contended workload admits: the cost of
    // a sequential admission is dominated by refilling every live
    // connection, which is exactly the work the batch's deferred-fill
    // rule elides, so the depth of the live set is the contrast knob.
    Network::new(
        regular::ring(6).expect("ring(6) is a valid topology"),
        NetworkConfig {
            capacity: drqos_core::qos::Bandwidth::kbps(30_000),
            ..NetworkConfig::default()
        },
    )
}

/// Admission throughput, one request at a time (the pre-batching path).
pub fn bench_admission_single(cfg: &TrajectoryConfig) -> BenchRecord {
    let mut samples = Vec::with_capacity(cfg.rounds * cfg.requests);
    for _ in 0..cfg.rounds {
        let mut net = fresh_ring();
        for req in contended_requests(cfg.requests) {
            let t0 = Instant::now();
            let _ = net.establish(req.src, req.dst, req.qos);
            samples.push(t0.elapsed().as_nanos() as u64);
        }
    }
    BenchRecord::from_samples("admission_single", samples)
}

/// Admission throughput through [`Network::establish_batch`] in
/// contention order — the daemon's batched path. Per-op latency is the
/// batch wall time split evenly across its requests.
pub fn bench_admission_batch(cfg: &TrajectoryConfig) -> BenchRecord {
    let mut samples = Vec::with_capacity(cfg.rounds * cfg.requests);
    for _ in 0..cfg.rounds {
        let mut net = fresh_ring();
        let requests = contended_requests(cfg.requests);
        for chunk in requests.chunks(cfg.batch.max(1)) {
            let order = net.contention_order(chunk);
            let sorted: Vec<EstablishRequest> = order
                .iter()
                .filter_map(|&i| chunk.get(i).copied())
                .collect();
            let t0 = Instant::now();
            let _ = net.establish_batch(&sorted);
            let per_op = t0.elapsed().as_nanos() as u64 / sorted.len().max(1) as u64;
            samples.extend(std::iter::repeat_n(per_op, sorted.len()));
        }
    }
    BenchRecord::from_samples("admission_batch", samples)
}

/// Shard count for the wave-admission pair, matching CI's largest
/// shard-diff count.
pub const WAVE_SHARDS: usize = 4;

/// Wave-workload admission one request at a time through the monolithic
/// [`Network::establish`] — the per-request baseline the sharded engine
/// must beat on the same contended workload. Measured adjacent to the
/// sharded run (rather than reusing `admission_single`'s number) so the
/// pair shares machine conditions.
pub fn bench_admission_wave_mono(cfg: &TrajectoryConfig) -> BenchRecord {
    let mut samples = Vec::with_capacity(cfg.rounds * cfg.requests);
    for _ in 0..cfg.rounds {
        let mut net = fresh_ring();
        for req in contended_requests(cfg.requests) {
            let t0 = Instant::now();
            let _ = net.establish(req.src, req.dst, req.qos);
            samples.push(t0.elapsed().as_nanos() as u64);
        }
    }
    BenchRecord::from_samples("admission_wave_mono", samples)
}

/// The same contended workload through [`ShardedNetwork::establish_wave`]
/// at [`WAVE_SHARDS`] shards, in contention-ordered waves — the daemon's
/// `DRQOS_SHARDS=4` path. The workload is the sharded engine's *worst*
/// case for planning: every request collides with every footprint, so
/// nearly every frozen plan goes stale and is replanned at the sequential
/// point. The bench therefore measures what survives that collision — the
/// wave commit's deferred-fill elision, which on this fill-dominated
/// workload (planning on the small ring is cheap, refilling the deep live
/// set is not) still beats per-request admission outright. On a
/// single-core container that elision is the entire win; with more cores
/// phase 1 additionally plans the shards in parallel.
pub fn bench_admission_wave_shard(cfg: &TrajectoryConfig) -> BenchRecord {
    let mut samples = Vec::with_capacity(cfg.rounds * cfg.requests);
    for _ in 0..cfg.rounds {
        let mut net = ShardedNetwork::new(fresh_ring(), WAVE_SHARDS);
        let requests = contended_requests(cfg.requests);
        for chunk in requests.chunks(cfg.batch.max(1)) {
            let order = net.inner().contention_order(chunk);
            let sorted: Vec<EstablishRequest> = order
                .iter()
                .filter_map(|&i| chunk.get(i).copied())
                .collect();
            let t0 = Instant::now();
            let _ = net.establish_wave(&sorted);
            let per_op = t0.elapsed().as_nanos() as u64 / sorted.len().max(1) as u64;
            samples.extend(std::iter::repeat_n(per_op, sorted.len()));
        }
    }
    BenchRecord::from_samples("admission_wave_shard4", samples)
}

/// Member count for the federated wave bench, matching CI's
/// `cluster-smoke` daemon count.
pub const CLUSTER_MEMBERS: usize = 3;

/// The contended workload through a 3-member [`ClusterSim`]'s
/// `establish_wave` — replica planning, the coordinator's two-phase
/// reserve/validate/commit ledger, oplog append, and full replica sync
/// per wave. The contrast with `admission_wave_shard4` prices the
/// federation layer itself: same deferred-fill commit rule, plus the
/// footprint ledger and N-replica replay the daemons pay for crash
/// survival. On this all-colliding workload nearly every footprint goes
/// stale, so this is the federation's worst case, like the shard bench
/// above it.
pub fn bench_cluster_establish(cfg: &TrajectoryConfig) -> BenchRecord {
    let mut samples = Vec::with_capacity(cfg.rounds * cfg.requests);
    for _ in 0..cfg.rounds {
        let mut sim = ClusterSim::new(
            fresh_ring(),
            CLUSTER_MEMBERS,
            drqos_cluster::DEFAULT_CLUSTER_SEED,
        );
        let requests = contended_requests(cfg.requests);
        for chunk in requests.chunks(cfg.batch.max(1)) {
            let order = sim.authoritative().contention_order(chunk);
            let sorted: Vec<EstablishRequest> = order
                .iter()
                .filter_map(|&i| chunk.get(i).copied())
                .collect();
            let t0 = Instant::now();
            let _ = sim.establish_wave(&sorted);
            let per_op = t0.elapsed().as_nanos() as u64 / sorted.len().max(1) as u64;
            samples.extend(std::iter::repeat_n(per_op, sorted.len()));
        }
    }
    BenchRecord::from_samples("cluster_establish_3", samples)
}

/// The churn experiment harness (warm-up + arrival/termination events).
/// Per-op latency here is each round's mean event time — the harness has
/// no per-event clock — so the quantiles spread across rounds.
pub fn bench_churn(cfg: &TrajectoryConfig) -> BenchRecord {
    let rounds = cfg.rounds.clamp(1, 8);
    let mut samples = Vec::new();
    for round in 0..rounds {
        let config = ExperimentConfig {
            churn_events: cfg.churn_events,
            seed: crate::runner::derive_seed(cfg.seed, round as u64),
            ..ExperimentConfig::paper_default(cfg.churn_connections, 100)
        };
        let events = (config.target_connections + config.churn_events) as u64;
        let graph = regular::torus(4, 4).expect("torus(4,4) is a valid topology");
        let t0 = Instant::now();
        let _ = run_churn(graph, &config);
        let per_op = t0.elapsed().as_nanos() as u64 / events.max(1);
        samples.extend(std::iter::repeat_n(per_op, events as usize));
    }
    BenchRecord::from_samples("churn", samples)
}

/// The flash-crowd scenario harness: the churn experiment re-run through
/// [`run_scenario_churn`]'s thinning arrival loop with burst-epoch rate
/// modulation. The contrast with `churn` prices the scenario engine's
/// overhead (thinned candidates, per-event rate evaluation) on the same
/// topology and budget; the regression gate holds that price steady.
/// Per-op latency is each round's mean event time, as in `churn`.
pub fn bench_scenario_flashcrowd(cfg: &TrajectoryConfig) -> BenchRecord {
    let rounds = cfg.rounds.clamp(1, 8);
    let scenario = Scenario::new(ScenarioKind::FlashCrowd);
    let mut samples = Vec::new();
    for round in 0..rounds {
        let config = ExperimentConfig {
            churn_events: cfg.churn_events,
            seed: crate::runner::derive_seed(cfg.seed ^ 0x5343_4E52, round as u64), // "SCNR"
            ..ExperimentConfig::paper_default(cfg.churn_connections, 100)
        };
        let events = (config.target_connections + config.churn_events) as u64;
        let graph = regular::torus(4, 4).expect("torus(4,4) is a valid topology");
        let t0 = Instant::now();
        let _ = run_scenario_churn(graph, &config, &scenario);
        let per_op = t0.elapsed().as_nanos() as u64 / events.max(1);
        samples.extend(std::iter::repeat_n(per_op, events as usize));
    }
    BenchRecord::from_samples("scenario_flashcrowd", samples)
}

/// The load generator's op mix — a closed loop of seeded establishes and
/// releases against a torus — run in-process against the [`Network`]
/// (the admission work that dominates `drqosd`'s hot path; the TCP layer
/// is benched end-to-end by `drqos-loadgen` itself).
pub fn bench_loadgen_loop(cfg: &TrajectoryConfig) -> BenchRecord {
    let mut net = Network::new(
        regular::torus(6, 6).expect("torus(6,6) is a valid topology"),
        NetworkConfig::default(),
    );
    let n = net.graph().node_count();
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let qos = ElasticQos::paper_video(100);
    let mut live: Vec<ConnectionId> = Vec::new();
    let mut samples = Vec::with_capacity(cfg.loop_ops);
    for _ in 0..cfg.loop_ops {
        // The loadgen's mix: mostly establishes, releasing once enough
        // connections accumulate (its workers release ~1-in-3).
        let release = !live.is_empty() && (live.len() >= 64 || rng.chance(1.0 / 3.0));
        if release {
            let at = rng.range_usize(live.len());
            let id = live.swap_remove(at);
            let t0 = Instant::now();
            let _ = net.release(id);
            samples.push(t0.elapsed().as_nanos() as u64);
        } else {
            let src = rng.range_usize(n);
            let mut dst = rng.range_usize(n - 1);
            if dst >= src {
                dst += 1;
            }
            let t0 = Instant::now();
            let result = net.establish(NodeId(src), NodeId(dst), qos);
            samples.push(t0.elapsed().as_nanos() as u64);
            if let Ok(id) = result {
                live.push(id);
            }
        }
    }
    BenchRecord::from_samples("loadgen_loop", samples)
}

/// Runs the full bench suite in trajectory order.
pub fn run_benches(cfg: &TrajectoryConfig) -> Vec<BenchRecord> {
    vec![
        bench_admission_single(cfg),
        bench_admission_batch(cfg),
        bench_admission_wave_mono(cfg),
        bench_admission_wave_shard(cfg),
        bench_cluster_establish(cfg),
        bench_churn(cfg),
        bench_scenario_flashcrowd(cfg),
        bench_loadgen_loop(cfg),
    ]
}

// ----------------------------------------------------------- file I/O --

/// Reads the entry lines (one JSON object each) out of a trajectory
/// file. A missing file is an empty trajectory.
///
/// # Errors
///
/// Any I/O error other than the file not existing.
pub fn read_entry_lines(path: &Path) -> io::Result<Vec<String>> {
    let content = match fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(content
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"entry\""))
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .collect())
}

/// Appends one entry and rewrites the file (one entry per line inside
/// the `{"trajectory":[...]}` wrapper, so each PR diffs as one line).
///
/// # Errors
///
/// Any I/O error from reading or writing the file.
pub fn append_entry(path: &Path, entry: &TrajectoryEntry) -> io::Result<()> {
    let mut lines = read_entry_lines(path)?;
    lines.push(entry.to_json());
    fs::write(
        path,
        format!("{{\"trajectory\":[\n{}\n]}}\n", lines.join(",\n")),
    )
}

/// Extracts one numeric field of one named bench from an entry line
/// (`bench_field(line, "admission_batch", "ops_per_sec")`). String
/// scanning instead of a JSON parser — the writer above controls the
/// format.
pub fn bench_field(entry_line: &str, bench: &str, field: &str) -> Option<f64> {
    let at = entry_line.find(&format!("\"name\":\"{bench}\""))?;
    let obj = entry_line.get(at..)?;
    let obj = obj.get(..obj.find('}')?)?;
    let key = format!("\"{field}\":");
    let at = obj.find(&key)? + key.len();
    let tail = obj.get(at..)?;
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail.get(..end)?.trim().parse().ok()
}

// -------------------------------------------------------------- checks --

/// Batched admission must beat single-request admission by at least this
/// factor on the contended-link microbench (the PR's acceptance bar).
pub const BATCH_SPEEDUP_FLOOR: f64 = 2.0;

/// Committed admission ops/sec may regress at most this fraction between
/// consecutive trajectory entries.
pub const MAX_REGRESSION: f64 = 0.10;

/// Sharded wave admission must beat the monolithic wave baseline by at
/// least this factor on the latest committed entry — the "shards pay for
/// themselves" bar.
pub const WAVE_SPEEDUP_FLOOR: f64 = 1.05;

/// Benches whose committed ops/sec are guarded against regression
/// between consecutive entries. (`scenario_flashcrowd` joins from its
/// first committed entry on; earlier entries simply predate it.)
const GUARDED_BENCHES: [&str; 6] = [
    "admission_single",
    "admission_batch",
    "admission_wave_mono",
    "admission_wave_shard4",
    "cluster_establish_3",
    "scenario_flashcrowd",
];

/// The `"entry"` label of one committed line, for error messages.
fn entry_label(line: &str) -> &str {
    line.split("\"entry\":\"")
        .nth(1)
        .and_then(|t| t.split('"').next())
        .unwrap_or("?")
}

/// Validates a committed trajectory file. The latest entry must show
/// batched admission ≥ [`BATCH_SPEEDUP_FLOOR`] × single-request ops/sec
/// and sharded wave admission ≥ [`WAVE_SPEEDUP_FLOOR`] × the monolithic
/// wave baseline; and across *every* adjacent pair of entries — not just
/// the last two, so a dip sandwiched between healthy entries cannot slip
/// through — no guarded bench may regress more than [`MAX_REGRESSION`]
/// or be dropped outright.
///
/// # Errors
///
/// A human-readable description of the first failed check.
pub fn check_committed(path: &Path) -> Result<Vec<String>, String> {
    let lines = read_entry_lines(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let Some(last) = lines.last() else {
        return Err(format!("{} has no trajectory entries", path.display()));
    };
    let mut report = Vec::new();
    let field = |line: &str, bench: &str, field: &str| -> Result<f64, String> {
        bench_field(line, bench, field)
            .ok_or_else(|| format!("latest entry is missing {bench}.{field}"))
    };
    let single = field(last, "admission_single", "ops_per_sec")?;
    let batch = field(last, "admission_batch", "ops_per_sec")?;
    if single <= 0.0 || batch < BATCH_SPEEDUP_FLOOR * single {
        return Err(format!(
            "latest entry: batched admission {batch:.0} ops/s is below \
             {BATCH_SPEEDUP_FLOOR}x single-request {single:.0} ops/s"
        ));
    }
    report.push(format!(
        "committed: admission_batch {batch:.0} ops/s = {:.2}x admission_single {single:.0} ops/s",
        batch / single
    ));
    let mono = field(last, "admission_wave_mono", "ops_per_sec")?;
    let shard = field(last, "admission_wave_shard4", "ops_per_sec")?;
    if mono <= 0.0 || shard < WAVE_SPEEDUP_FLOOR * mono {
        return Err(format!(
            "latest entry: sharded wave admission {shard:.0} ops/s does not beat \
             the monolith {mono:.0} ops/s by {WAVE_SPEEDUP_FLOOR}x"
        ));
    }
    report.push(format!(
        "committed: admission_wave_shard4 {shard:.0} ops/s = {:.2}x admission_wave_mono \
         {mono:.0} ops/s",
        shard / mono
    ));
    let mut guarded_pairs = 0usize;
    for pair in lines.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        for bench in GUARDED_BENCHES {
            let Some(before) = bench_field(prev, bench, "ops_per_sec").filter(|v| *v > 0.0) else {
                // The earlier entry predates this bench (or recorded
                // zero); nothing to regress against.
                continue;
            };
            let Some(now) = bench_field(next, bench, "ops_per_sec").filter(|v| *v > 0.0) else {
                return Err(format!(
                    "entry {} dropped {bench}, which entry {} still measured",
                    entry_label(next),
                    entry_label(prev)
                ));
            };
            if now < (1.0 - MAX_REGRESSION) * before {
                return Err(format!(
                    "{bench} regressed {:.1}% between entries {} and {} \
                     ({before:.0} -> {now:.0} ops/s; >{:.0}% not allowed)",
                    100.0 * (1.0 - now / before),
                    entry_label(prev),
                    entry_label(next),
                    100.0 * MAX_REGRESSION
                ));
            }
            guarded_pairs += 1;
        }
    }
    report.push(if guarded_pairs == 0 {
        "committed: single entry, no previous to compare".to_string()
    } else {
        format!(
            "committed: no >{:.0}% regression across {guarded_pairs} adjacent bench pair(s) \
             in the full history",
            100.0 * MAX_REGRESSION
        )
    });
    Ok(report)
}

/// Validates a fresh measurement pair on this machine: batched admission
/// must beat single-request by [`BATCH_SPEEDUP_FLOOR`].
///
/// # Errors
///
/// A human-readable description of the failed speedup bar.
pub fn check_fresh(single: &BenchRecord, batch: &BenchRecord) -> Result<String, String> {
    if single.ops_per_sec <= 0.0 || batch.ops_per_sec < BATCH_SPEEDUP_FLOOR * single.ops_per_sec {
        return Err(format!(
            "fresh run: batched admission {:.0} ops/s is below {BATCH_SPEEDUP_FLOOR}x \
             single-request {:.0} ops/s",
            batch.ops_per_sec, single.ops_per_sec
        ));
    }
    Ok(format!(
        "fresh run: admission_batch {:.0} ops/s = {:.2}x admission_single {:.0} ops/s",
        batch.ops_per_sec,
        batch.ops_per_sec / single.ops_per_sec,
        single.ops_per_sec
    ))
}

/// Validates a fresh wave-admission pair on this machine: the sharded
/// wave must beat the monolithic baseline by [`WAVE_SPEEDUP_FLOOR`].
///
/// # Errors
///
/// A human-readable description of the failed speedup bar.
pub fn check_fresh_wave(mono: &BenchRecord, shard: &BenchRecord) -> Result<String, String> {
    if mono.ops_per_sec <= 0.0 || shard.ops_per_sec < WAVE_SPEEDUP_FLOOR * mono.ops_per_sec {
        return Err(format!(
            "fresh run: sharded wave admission {:.0} ops/s does not beat the \
             monolith {:.0} ops/s by {WAVE_SPEEDUP_FLOOR}x",
            shard.ops_per_sec, mono.ops_per_sec
        ));
    }
    Ok(format!(
        "fresh run: admission_wave_shard4 {:.0} ops/s = {:.2}x admission_wave_mono {:.0} ops/s",
        shard.ops_per_sec,
        shard.ops_per_sec / mono.ops_per_sec,
        mono.ops_per_sec
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, ops_per_sec: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            ops: 100,
            wall_s: 0.5,
            ops_per_sec,
            p50_ns: 1_000,
            p95_ns: 2_000,
            p99_ns: 4_000,
        }
    }

    fn entry_with_wave(
        label: &str,
        single: f64,
        batch: f64,
        wave_mono: f64,
        wave_shard: f64,
    ) -> TrajectoryEntry {
        TrajectoryEntry {
            entry: label.to_string(),
            date: "2026-08-08".to_string(),
            benches: vec![
                record("admission_single", single),
                record("admission_batch", batch),
                record("admission_wave_mono", wave_mono),
                record("admission_wave_shard4", wave_shard),
                record("churn", 5_000.0),
                record("loadgen_loop", 9_000.0),
            ],
        }
    }

    fn entry(label: &str, single: f64, batch: f64) -> TrajectoryEntry {
        entry_with_wave(label, single, batch, 6_000.0, 9_000.0)
    }

    #[test]
    fn entry_json_round_trips_through_bench_field() {
        let line = entry("pr6", 10_000.0, 25_000.0).to_json();
        assert_eq!(
            bench_field(&line, "admission_single", "ops_per_sec"),
            Some(10_000.0)
        );
        assert_eq!(
            bench_field(&line, "admission_batch", "ops_per_sec"),
            Some(25_000.0)
        );
        assert_eq!(bench_field(&line, "churn", "ops"), Some(100.0));
        assert_eq!(bench_field(&line, "loadgen_loop", "p99_ns"), Some(4_000.0));
        assert_eq!(bench_field(&line, "missing_bench", "ops"), None);
        assert_eq!(bench_field(&line, "churn", "missing_field"), None);
    }

    #[test]
    fn append_accumulates_one_line_per_entry() {
        let dir = std::env::temp_dir().join(format!("drqos-traj-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trajectory.json");
        assert_eq!(
            read_entry_lines(&path).unwrap().len(),
            0,
            "missing file is empty"
        );
        append_entry(&path, &entry("pr6", 10_000.0, 25_000.0)).unwrap();
        append_entry(&path, &entry("pr7", 11_000.0, 26_000.0)).unwrap();
        let lines = read_entry_lines(&path).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"entry\":\"pr6\""));
        assert!(lines[1].contains("\"entry\":\"pr7\""));
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("{\"trajectory\":[\n"));
        assert!(content.ends_with("\n]}\n"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_checks_enforce_speedup_and_regression_bars() {
        let dir = std::env::temp_dir().join(format!("drqos-traj-check-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trajectory.json");
        assert!(
            check_committed(&path).is_err(),
            "empty trajectory must fail"
        );
        // Batch below 2x single: fail.
        append_entry(&path, &entry("pr6", 10_000.0, 15_000.0)).unwrap();
        assert!(check_committed(&path).unwrap_err().contains("below 2x"));
        // Healthy single entry: pass.
        fs::remove_file(&path).unwrap();
        append_entry(&path, &entry("pr6", 10_000.0, 25_000.0)).unwrap();
        assert!(check_committed(&path).is_ok());
        // >10% regression vs the previous entry: fail.
        append_entry(&path, &entry("pr7", 10_000.0, 21_000.0)).unwrap();
        assert!(check_committed(&path).unwrap_err().contains("regressed"));
        // Within 10%: pass.
        fs::remove_file(&path).unwrap();
        append_entry(&path, &entry("pr6", 10_000.0, 25_000.0)).unwrap();
        append_entry(&path, &entry("pr7", 9_500.0, 24_000.0)).unwrap();
        let report = check_committed(&path).unwrap();
        assert!(report.iter().any(|l| l.contains("full history")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_regression_gate_covers_the_full_history() {
        // A dip sandwiched between healthy entries: comparing only the
        // last two entries would pass, so this pins the full sweep.
        let dir = std::env::temp_dir().join(format!("drqos-traj-hist-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trajectory.json");
        append_entry(&path, &entry("pr6", 10_000.0, 25_000.0)).unwrap();
        append_entry(&path, &entry("pr7", 10_000.0, 12_000.0)).unwrap();
        append_entry(&path, &entry("pr8", 10_000.0, 25_000.0)).unwrap();
        let err = check_committed(&path).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(
            err.contains("between entries pr6 and pr7"),
            "the dip's pair must be named: {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_wave_gate_requires_sharded_to_beat_the_monolith() {
        let dir = std::env::temp_dir().join(format!("drqos-traj-wave-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trajectory.json");
        // Sharded at parity with (not beating) the monolith: fail.
        append_entry(
            &path,
            &entry_with_wave("pr7", 10_000.0, 25_000.0, 6_000.0, 6_000.0),
        )
        .unwrap();
        let err = check_committed(&path).unwrap_err();
        assert!(err.contains("does not beat the monolith"), "{err}");
        // A latest entry that omits the wave benches entirely: fail —
        // the gate must not be satisfiable by not measuring.
        fs::remove_file(&path).unwrap();
        let legacy = TrajectoryEntry {
            entry: "pr7".to_string(),
            date: "2026-08-08".to_string(),
            benches: vec![
                record("admission_single", 10_000.0),
                record("admission_batch", 25_000.0),
            ],
        };
        append_entry(&path, &legacy).unwrap();
        let err = check_committed(&path).unwrap_err();
        assert!(err.contains("missing admission_wave_mono"), "{err}");
        // A mid-history entry dropping a bench its predecessor measured:
        // fail, even though the latest entry is healthy.
        fs::remove_file(&path).unwrap();
        append_entry(&path, &entry("pr6", 10_000.0, 25_000.0)).unwrap();
        append_entry(
            &path,
            &TrajectoryEntry {
                benches: entry("pr7", 10_000.0, 25_000.0)
                    .benches
                    .into_iter()
                    .filter(|b| b.name != "admission_wave_shard4")
                    .collect(),
                ..entry("pr7", 10_000.0, 25_000.0)
            },
        )
        .unwrap();
        append_entry(&path, &entry("pr8", 10_000.0, 25_000.0)).unwrap();
        let err = check_committed(&path).unwrap_err();
        assert!(err.contains("pr7 dropped admission_wave_shard4"), "{err}");
        // Healthy wave pair: pass, and the speedup is reported.
        fs::remove_file(&path).unwrap();
        append_entry(
            &path,
            &entry_with_wave("pr7", 10_000.0, 25_000.0, 6_000.0, 9_000.0),
        )
        .unwrap();
        let report = check_committed(&path).unwrap();
        assert!(
            report.iter().any(|l| l.contains("admission_wave_shard4")),
            "{report:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_wave_check_enforces_the_speedup_floor() {
        assert!(check_fresh_wave(&record("m", 6_000.0), &record("s", 9_000.0)).is_ok());
        assert!(check_fresh_wave(&record("m", 6_000.0), &record("s", 6_100.0)).is_err());
        assert!(check_fresh_wave(&record("m", 0.0), &record("s", 6_100.0)).is_err());
    }

    #[test]
    fn fresh_check_enforces_the_speedup_floor() {
        assert!(check_fresh(&record("s", 10_000.0), &record("b", 25_000.0)).is_ok());
        assert!(check_fresh(&record("s", 10_000.0), &record("b", 19_000.0)).is_err());
        assert!(check_fresh(&record("s", 0.0), &record("b", 19_000.0)).is_err());
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_ns(&sorted, 0.50), 51);
        assert_eq!(quantile_ns(&sorted, 0.99), 99);
        assert_eq!(quantile_ns(&[], 0.5), 0);
        assert_eq!(quantile_ns(&[7], 0.99), 7);
    }

    #[test]
    fn today_renders_an_iso_date() {
        let d = today_utc();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        assert!(d.starts_with("20"), "{d}");
    }

    #[test]
    fn quick_benches_measure_and_batch_keeps_results_identical() {
        // A smoke run of the admission pair on a tiny config: both paths
        // admit the same workload (the equivalence the differential
        // fuzzer proves at scale), and every record carries samples.
        let cfg = TrajectoryConfig {
            requests: 16,
            rounds: 2,
            ..TrajectoryConfig::quick()
        };
        let single = bench_admission_single(&cfg);
        let batch = bench_admission_batch(&cfg);
        let wave_mono = bench_admission_wave_mono(&cfg);
        let wave_shard = bench_admission_wave_shard(&cfg);
        for r in [&single, &batch, &wave_mono, &wave_shard] {
            assert_eq!(r.ops, (cfg.requests * cfg.rounds) as u64, "{}", r.name);
            assert!(r.wall_s > 0.0, "{} measured nothing", r.name);
            assert!(r.p50_ns <= r.p95_ns && r.p95_ns <= r.p99_ns, "{}", r.name);
        }
        // No throughput assertion here — CI machines are noisy; the 2x
        // and wave bars are enforced by `trajectory --check` on a
        // release build.
    }
}
