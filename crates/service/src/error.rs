//! Protocol-level errors: failures of the *wire format* itself, before a
//! command ever reaches the network.
//!
//! These own the 1–99 code block reserved in `drqos_core::wire`; domain
//! errors (QoS, admission, network, invariants) carry the 100+ codes
//! assigned next to their enums in `drqos-core`.

use std::fmt;

/// Empty command line.
pub const CODE_EMPTY: u16 = 1;
/// Unrecognized command verb.
pub const CODE_UNKNOWN_COMMAND: u16 = 2;
/// Wrong number of arguments for the verb.
pub const CODE_ARG_COUNT: u16 = 3;
/// An argument failed to parse as a non-negative integer.
pub const CODE_BAD_INT: u16 = 4;
/// The server is shutting down and no longer accepts commands.
pub const CODE_SHUTTING_DOWN: u16 = 11;
/// An internal engine inconsistency (e.g. a just-established connection
/// that cannot be read back). The daemon reports it instead of panicking
/// so one bad command can never take down other sessions.
pub const CODE_INTERNAL: u16 = 12;

/// A malformed or unserviceable command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable numeric code (1–99).
    pub code: u16,
    /// Deterministic human-readable message (never contains wall-clock or
    /// host-specific data, so error replies stay golden-traceable).
    pub message: String,
}

impl ProtocolError {
    /// An empty command line.
    pub fn empty() -> Self {
        Self {
            code: CODE_EMPTY,
            message: "empty command".to_string(),
        }
    }

    /// An unknown verb.
    pub fn unknown_command(verb: &str) -> Self {
        Self {
            code: CODE_UNKNOWN_COMMAND,
            message: format!("unknown command {verb}"),
        }
    }

    /// Wrong argument count for `verb` (wanted `expected`, got `got`).
    pub fn arg_count(verb: &str, expected: usize, got: usize) -> Self {
        Self {
            code: CODE_ARG_COUNT,
            message: format!("{verb} takes {expected} arg(s), got {got}"),
        }
    }

    /// A non-integer argument.
    pub fn bad_int(arg: &str) -> Self {
        Self {
            code: CODE_BAD_INT,
            message: format!("not a non-negative integer: {arg}"),
        }
    }

    /// The server is draining for shutdown.
    pub fn shutting_down() -> Self {
        Self {
            code: CODE_SHUTTING_DOWN,
            message: "server shutting down".to_string(),
        }
    }

    /// An internal engine inconsistency the event loop reports rather
    /// than panics on. `detail` must be deterministic (no wall-clock, no
    /// addresses) so sessions stay golden-traceable even when this fires.
    pub fn internal(detail: &str) -> Self {
        Self {
            code: CODE_INTERNAL,
            message: format!("internal error: {detail}"),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_stay_in_the_protocol_block() {
        for e in [
            ProtocolError::empty(),
            ProtocolError::unknown_command("FOO"),
            ProtocolError::arg_count("RELEASE", 1, 0),
            ProtocolError::bad_int("x"),
            ProtocolError::shutting_down(),
            ProtocolError::internal("c0 vanished"),
        ] {
            assert!((1..100).contains(&e.code), "code {} outside 1–99", e.code);
            // Domain codes start at 100; no overlap possible.
            assert!(drqos_core::wire::describe(e.code).is_none());
        }
    }

    #[test]
    fn messages_name_the_offender() {
        assert!(ProtocolError::unknown_command("FOO")
            .to_string()
            .contains("FOO"));
        assert!(ProtocolError::bad_int("12x").to_string().contains("12x"));
        assert!(ProtocolError::arg_count("RELEASE", 1, 3)
            .to_string()
            .contains("RELEASE"));
    }
}
