//! Request metrics: per-operation latency histograms, admit/reject
//! counters, and throughput.
//!
//! The histogram is a fixed array of power-of-two nanosecond buckets, so
//! recording is allocation-free and O(1); percentiles are read as bucket
//! upper bounds, which is exact enough for tail reporting (within 2× of
//! the true value, by construction). Everything is hand-rolled — the
//! offline build has no external crates.

use std::time::{Duration, Instant};

/// Number of power-of-two buckets: covers 1 ns to ~584 years.
const BUCKETS: usize = 64;

/// A started per-operation latency clock.
///
/// All of the daemon's wall-clock access lives in this module (the
/// `raw-clock` lint pins it here): the engine starts an `OpTimer` per
/// command and hands the elapsed `Duration` back to [`Metrics::record`],
/// so command handling itself stays clock-free and deterministic.
#[derive(Debug, Clone, Copy)]
pub struct OpTimer(Instant);

impl OpTimer {
    /// Starts timing now.
    pub fn start() -> Self {
        Self(Instant::now()) // lint:allow(determinism-taint): latency histogram feeds STATS only, masked in goldens
    }

    /// Time elapsed since [`OpTimer::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// A log₂-bucketed latency histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        // Bucket i holds samples in [2^i, 2^(i+1)); 0 ns lands in bucket 0.
        let idx = (63 - (nanos | 1).leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound in
    /// nanoseconds, or 0 with no samples.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i covers [2^i, 2^(i+1)); the last bucket's upper
                // bound does not fit in a u64, so it saturates.
                return if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
            }
        }
        u64::MAX
    }

    /// The `q`-quantile in whole microseconds (minimum 1 µs once any
    /// sample exists, so reports never show a zero tail).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.quantile_nanos(q) / 1_000).max(1)
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }
}

/// The operations the metrics layer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `ESTABLISH`.
    Establish,
    /// `RELEASE`.
    Release,
    /// `FAIL-LINK`.
    FailLink,
    /// `REPAIR-LINK`.
    RepairLink,
    /// `FAIL-NODE`.
    FailNode,
    /// `FAIL-SRLG`.
    FailSrlg,
    /// `REPAIR-SRLG`.
    RepairSrlg,
    /// `SNAPSHOT`.
    Snapshot,
    /// `STATS`.
    Stats,
    /// `SHUTDOWN`.
    Shutdown,
    /// A line that failed to parse.
    Invalid,
}

impl OpKind {
    /// All kinds, in report order.
    pub const ALL: [OpKind; 11] = [
        OpKind::Establish,
        OpKind::Release,
        OpKind::FailLink,
        OpKind::RepairLink,
        OpKind::FailNode,
        OpKind::FailSrlg,
        OpKind::RepairSrlg,
        OpKind::Snapshot,
        OpKind::Stats,
        OpKind::Shutdown,
        OpKind::Invalid,
    ];

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Establish => "establish",
            OpKind::Release => "release",
            OpKind::FailLink => "fail_link",
            OpKind::RepairLink => "repair_link",
            OpKind::FailNode => "fail_node",
            OpKind::FailSrlg => "fail_srlg",
            OpKind::RepairSrlg => "repair_srlg",
            OpKind::Snapshot => "snapshot",
            OpKind::Stats => "stats",
            OpKind::Shutdown => "shutdown",
            OpKind::Invalid => "invalid",
        }
    }

    fn index(self) -> usize {
        match self {
            OpKind::Establish => 0,
            OpKind::Release => 1,
            OpKind::FailLink => 2,
            OpKind::RepairLink => 3,
            OpKind::FailNode => 4,
            OpKind::FailSrlg => 5,
            OpKind::RepairSrlg => 6,
            OpKind::Snapshot => 7,
            OpKind::Stats => 8,
            OpKind::Shutdown => 9,
            OpKind::Invalid => 10,
        }
    }
}

/// Per-operation counters and latency distribution.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    /// Requests handled.
    pub count: u64,
    /// Requests answered with `ERR`.
    pub errors: u64,
    /// Handling-latency histogram.
    pub latency: Histogram,
}

/// The daemon's request-metrics layer.
#[derive(Debug, Clone)]
pub struct Metrics {
    started: Instant,
    ops: [OpStats; 11],
    /// `ESTABLISH` requests admitted.
    pub admitted: u64,
    /// `ESTABLISH` requests rejected (QoS or admission errors).
    pub rejected: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh metrics layer; throughput is measured from this instant.
    pub fn new() -> Self {
        Self {
            started: Instant::now(), // lint:allow(determinism-taint): uptime feeds STATS throughput only, masked in goldens
            ops: Default::default(),
            admitted: 0,
            rejected: 0,
        }
    }

    /// Records one handled request.
    pub fn record(&mut self, op: OpKind, latency: Duration, errored: bool) {
        let stats = &mut self.ops[op.index()];
        stats.count += 1;
        if errored {
            stats.errors += 1;
        }
        stats.latency.record(latency);
        if op == OpKind::Establish {
            if errored {
                self.rejected += 1;
            } else {
                self.admitted += 1;
            }
        }
    }

    /// The stats for one operation kind.
    pub fn op(&self, op: OpKind) -> &OpStats {
        &self.ops[op.index()]
    }

    /// Total requests handled across all operations.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|s| s.count).sum()
    }

    /// Total `ERR` responses across all operations.
    pub fn total_errors(&self) -> u64 {
        self.ops.iter().map(|s| s.errors).sum()
    }

    /// Latency histogram merged over every operation.
    pub fn merged_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for s in &self.ops {
            h.merge(&s.latency);
        }
        h
    }

    /// Seconds since the metrics layer was created.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Requests handled per wall-clock second since creation.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed_s();
        if secs > 0.0 {
            self.total_ops() as f64 / secs
        } else {
            0.0
        }
    }

    /// Serializes the metrics as a JSON object (hand-rolled, matching the
    /// `runtime.json` convention of `drqos-bench`).
    pub fn to_json(&self, name: &str) -> String {
        let merged = self.merged_latency();
        let mut per_op = Vec::new();
        for kind in OpKind::ALL {
            let s = self.op(kind);
            if s.count == 0 {
                continue;
            }
            per_op.push(format!(
                concat!(
                    "{{\"op\":\"{}\",\"count\":{},\"errors\":{},",
                    "\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}"
                ),
                kind.label(),
                s.count,
                s.errors,
                s.latency.quantile_us(0.50),
                s.latency.quantile_us(0.95),
                s.latency.quantile_us(0.99),
            ));
        }
        format!(
            concat!(
                "{{\"name\":\"{}\",\"ops\":{},\"errors\":{},",
                "\"admitted\":{},\"rejected\":{},",
                "\"wall_s\":{:.6},\"ops_per_sec\":{:.1},",
                "\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},",
                "\"per_op\":[{}]}}"
            ),
            name.replace(['"', '\\'], "_"),
            self.total_ops(),
            self.total_errors(),
            self.admitted,
            self.rejected,
            self.elapsed_s(),
            self.ops_per_sec(),
            merged.quantile_us(0.50),
            merged.quantile_us(0.95),
            merged.quantile_us(0.99),
            per_op.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100));
        }
        h.record(Duration::from_micros(100));
        assert_eq!(h.count(), 100);
        // p50 sits in the 100 ns bucket [64, 128) → upper bound 128.
        assert_eq!(h.quantile_nanos(0.50), 128);
        // p99 lands on the 99th of 100 samples — still 100 ns.
        assert_eq!(h.quantile_nanos(0.99), 128);
        // p100 reaches the single 100 µs outlier.
        assert!(h.quantile_nanos(1.0) > 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_nanos(0.5), 0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn quantile_us_floors_at_one_microsecond() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.quantile_us(0.5), 1);
    }

    #[test]
    fn bucket_63_saturates_to_u64_max() {
        // 2^63 ns lands in the last bucket [2^63, 2^64); its upper bound
        // does not fit in a u64 and must saturate, not report 2^63 (the
        // *lower* bound) as the quantile.
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(1u64 << 63));
        assert_eq!(h.quantile_nanos(0.5), u64::MAX);
        assert_eq!(h.quantile_nanos(1.0), u64::MAX);
        // A >u64-ns duration clamps on record and stays saturated.
        h.record(Duration::from_secs(u64::MAX));
        assert_eq!(h.quantile_nanos(1.0), u64::MAX);
    }

    #[test]
    fn zero_nanosecond_sample_lands_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        // Bucket 0 is [1, 2) by the (nanos | 1) clamp → upper bound 2.
        assert_eq!(h.quantile_nanos(0.5), 2);
        assert_eq!(h.quantile_us(0.5), 1);
    }

    #[test]
    fn merge_then_quantile_spans_both_sources() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..9 {
            a.record(Duration::from_nanos(100));
        }
        b.record(Duration::from_nanos(1u64 << 63));
        a.merge(&b);
        assert_eq!(a.count(), 10);
        // Median still in the 100 ns bucket; the max reaches the
        // saturated last bucket from the merged-in histogram.
        assert_eq!(a.quantile_nanos(0.5), 128);
        assert_eq!(a.quantile_nanos(1.0), u64::MAX);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_nanos(100));
        b.record(Duration::from_micros(10));
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn metrics_track_admission_split() {
        let mut m = Metrics::new();
        m.record(OpKind::Establish, Duration::from_micros(3), false);
        m.record(OpKind::Establish, Duration::from_micros(3), true);
        m.record(OpKind::Release, Duration::from_micros(1), false);
        m.record(OpKind::Invalid, Duration::from_nanos(200), true);
        assert_eq!(m.admitted, 1);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.total_ops(), 4);
        assert_eq!(m.total_errors(), 2);
        assert_eq!(m.op(OpKind::Establish).count, 2);
        assert_eq!(m.op(OpKind::Release).errors, 0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut m = Metrics::new();
        m.record(OpKind::Establish, Duration::from_micros(5), false);
        let json = m.to_json("drqosd");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"drqosd\""));
        assert!(json.contains("\"admitted\":1"));
        assert!(json.contains("\"op\":\"establish\""));
        // Unused ops are omitted from per_op.
        assert!(!json.contains("\"op\":\"fail_node\""));
    }
}
