//! Closed-loop multi-client load generation against a running `drqosd`.
//!
//! Each of N worker threads opens its own TCP connection and replays a
//! seeded slice of the repo's standard workload
//! ([`drqos_core::workload::Workload`]): establish a connection, sometimes
//! release one it owns, finally release everything it still holds.
//! Workers are *closed-loop* — at most one in-flight request per
//! connection — so achieved throughput is a fair serving benchmark, not a
//! buffer-depth artifact. Per-request latency is measured client-side
//! (send → response) into the same histogram the daemon uses.
//!
//! Streams are disjoint by construction: a worker only ever releases ids
//! it established itself, so any `ERR` outside admission rejections
//! (codes 200–299) indicates a server bug and fails the run.

use crate::frame;
use crate::metrics::Histogram;
use crate::protocol::{self, payload_field};
use drqos_bench::runner::derive_seed;
use drqos_core::env::WireMode;
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_core::workload::Workload;
use drqos_sim::rng::Rng;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7841`.
    pub addr: String,
    /// Worker threads (= concurrent client connections).
    pub clients: usize,
    /// `ESTABLISH` attempts per worker.
    pub requests_per_client: usize,
    /// Base seed; worker i runs on `derive_seed(seed, i)`.
    pub seed: u64,
    /// Probability of issuing a `RELEASE` after each establish attempt.
    pub release_prob: f64,
    /// Elastic range minimum (Kbps).
    pub bmin: u64,
    /// Elastic range maximum (Kbps).
    pub bmax: u64,
    /// Increment Δ (Kbps).
    pub delta: u64,
    /// Send `SHUTDOWN` after the run and verify the clean-exit reply.
    pub shutdown: bool,
    /// Wire mode to speak (must match the daemon's `DRQOS_WIRE`).
    pub wire: WireMode,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7841".to_string(),
            clients: 4,
            requests_per_client: 250,
            seed: 2001,
            release_prob: 0.4,
            bmin: 100,
            bmax: 500,
            delta: 100,
            shutdown: false,
            wire: drqos_core::env::wire(),
        }
    }
}

/// Aggregated outcome of a load-generation run.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Total requests sent (establish + release, excluding the initial
    /// snapshot and any final shutdown).
    pub ops: u64,
    /// Connections admitted.
    pub admitted: u64,
    /// Admission rejections (expected under load; codes 100–299).
    pub rejected: u64,
    /// `BUSY` replies (each is retried until the command lands).
    pub busy_retries: u64,
    /// Protocol errors: malformed-command codes (1–99), unexpected
    /// network-level errors (300+), or unparseable replies. Must be zero
    /// for a healthy server.
    pub protocol_errors: u64,
    /// Client-observed request latency.
    pub latency: Histogram,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Whether the final `SHUTDOWN` (if requested) reported a clean,
    /// invariant-checked exit.
    pub clean_shutdown: Option<bool>,
}

impl LoadgenReport {
    /// Achieved operations per second across all clients.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }

    /// Human-readable summary (what the binary prints).
    pub fn summary(&self) -> String {
        format!(
            "ops={} admitted={} rejected={} busy_retries={} protocol_errors={} \
             ops_per_sec={:.0} p50_us={} p99_us={}",
            self.ops,
            self.admitted,
            self.rejected,
            self.busy_retries,
            self.protocol_errors,
            self.ops_per_sec(),
            self.latency.quantile_us(0.50),
            self.latency.quantile_us(0.99),
        )
    }

    /// JSON for the `runtime.json` convention of `drqos-bench`.
    pub fn to_json(&self, clients: usize, seed: u64) -> String {
        format!(
            concat!(
                "{{\"name\":\"loadgen\",\"clients\":{},\"seed\":{},",
                "\"ops\":{},\"admitted\":{},\"rejected\":{},",
                "\"busy_retries\":{},\"protocol_errors\":{},",
                "\"wall_s\":{:.6},\"ops_per_sec\":{:.1},",
                "\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}"
            ),
            clients,
            seed,
            self.ops,
            self.admitted,
            self.rejected,
            self.busy_retries,
            self.protocol_errors,
            self.wall.as_secs_f64(),
            self.ops_per_sec(),
            self.latency.quantile_us(0.50),
            self.latency.quantile_us(0.95),
            self.latency.quantile_us(0.99),
        )
    }
}

/// One worker's tallies, merged into the report under a mutex at the end.
#[derive(Debug, Default)]
struct WorkerStats {
    ops: u64,
    admitted: u64,
    rejected: u64,
    busy_retries: u64,
    protocol_errors: u64,
    latency: Histogram,
}

/// Bounded `BUSY` retry policy: exponential backoff with seeded jitter.
///
/// The cap comes from `DRQOS_BUSY_RETRIES` (default 64); the delay before
/// retry `attempt` is `200 µs · 2^attempt` capped at ~51 ms, scaled by a
/// seeded jitter factor in `[0.5, 1.5)` so lock-stepped workers do not
/// hammer the queue in phase.
struct Backoff {
    max_retries: usize,
    rng: Rng,
}

impl Backoff {
    fn new(seed: u64) -> Self {
        Self {
            max_retries: drqos_core::env::busy_retries(),
            rng: Rng::seed_from_u64(seed ^ 0xB05F_B05F),
        }
    }

    fn delay(&mut self, attempt: usize) -> Duration {
        let base_us = 200u64 << attempt.min(8) as u32;
        let jitter = self.rng.range_f64(0.5, 1.5);
        Duration::from_micros((base_us as f64 * jitter) as u64)
    }
}

/// A protocol client over one TCP stream, speaking either wire mode;
/// commands and replies cross this boundary as canonical text either
/// way, so the workload logic above is framing-agnostic.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    backoff: Backoff,
    wire: WireMode,
}

impl Client {
    fn connect(addr: &str, backoff_seed: u64, wire: WireMode) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
            backoff: Backoff::new(backoff_seed),
            wire,
        })
    }

    /// Sends one command and reads its one response, rendered as the
    /// canonical response line regardless of wire mode.
    fn roundtrip(&mut self, command: &str) -> io::Result<String> {
        match self.wire {
            WireMode::Text => {
                writeln!(self.writer, "{command}")?;
                self.writer.flush()?;
                let mut resp = String::new();
                if self.reader.read_line(&mut resp)? == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                Ok(resp.trim_end().to_string())
            }
            WireMode::Binary => {
                let req = protocol::parse(command)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.message))?;
                self.writer.write_all(&frame::encode_request(&req))?;
                self.writer.flush()?;
                let body = frame::read_frame(&mut self.reader)?;
                Ok(frame::decode_response(&body)?.to_string())
            }
        }
    }

    /// Round-trips with bounded `BUSY` retry; counts retries into `stats`
    /// and errors out once the `DRQOS_BUSY_RETRIES` cap is exhausted (a
    /// queue that never drains is a server bug, not a reason to spin).
    fn roundtrip_retrying(&mut self, command: &str, stats: &mut WorkerStats) -> io::Result<String> {
        let mut attempt = 0usize;
        loop {
            let resp = self.roundtrip(command)?;
            if resp != "BUSY" {
                return Ok(resp);
            }
            if attempt >= self.backoff.max_retries {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "server still BUSY after {} retries of {command:?}",
                        self.backoff.max_retries
                    ),
                ));
            }
            stats.busy_retries += 1;
            std::thread::sleep(self.backoff.delay(attempt));
            attempt += 1;
        }
    }
}

/// Classifies a reply for the tallies. Returns the admitted id for an
/// establish `OK`.
fn tally(resp: &str, establishing: bool, stats: &mut WorkerStats) -> Option<u64> {
    if let Some(payload) = resp.strip_prefix("OK ") {
        if establishing {
            let id = payload_field(payload, "id");
            if id.is_some() {
                stats.admitted += 1;
            } else {
                stats.protocol_errors += 1;
            }
            return id;
        }
        return None;
    }
    if let Some(rest) = resp.strip_prefix("ERR ") {
        let code: u16 = rest
            .split_ascii_whitespace()
            .next()
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        if (100..300).contains(&code) && establishing {
            // QoS or admission rejection: expected under load.
            stats.rejected += 1;
        } else {
            stats.protocol_errors += 1;
        }
        return None;
    }
    stats.protocol_errors += 1;
    None
}

fn worker(config: &LoadgenConfig, worker_idx: usize, nodes: usize) -> io::Result<WorkerStats> {
    let mut stats = WorkerStats::default();
    let worker_seed = derive_seed(config.seed, worker_idx as u64);
    let mut client = Client::connect(&config.addr, worker_seed, config.wire)?;
    let mut rng = Rng::seed_from_u64(worker_seed);
    let qos = ElasticQos::new(
        Bandwidth::kbps(config.bmin),
        Bandwidth::kbps(config.bmax),
        Bandwidth::kbps(config.delta),
        1.0,
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let workload = Workload::new(qos);
    let mut held: Vec<u64> = Vec::new();
    let send_timed = |client: &mut Client,
                      command: &str,
                      establishing: bool,
                      stats: &mut WorkerStats|
     -> io::Result<Option<u64>> {
        let t0 = Instant::now();
        let resp = client.roundtrip_retrying(command, stats)?;
        stats.latency.record(t0.elapsed());
        stats.ops += 1;
        Ok(tally(&resp, establishing, stats))
    };
    for _ in 0..config.requests_per_client {
        let req = workload.request(&mut rng, nodes);
        let command = format!(
            "ESTABLISH {} {} {} {} {}",
            req.src.index(),
            req.dst.index(),
            config.bmin,
            config.bmax,
            config.delta
        );
        if let Some(id) = send_timed(&mut client, &command, true, &mut stats)? {
            held.push(id);
        }
        if !held.is_empty() && rng.chance(config.release_prob) {
            let idx = rng.range_usize(held.len());
            let id = held.swap_remove(idx);
            send_timed(&mut client, &format!("RELEASE {id}"), false, &mut stats)?;
        }
    }
    // Drain: release everything this worker still owns.
    for id in held.drain(..) {
        send_timed(&mut client, &format!("RELEASE {id}"), false, &mut stats)?;
    }
    Ok(stats)
}

/// Runs the load generator.
///
/// # Errors
///
/// Connection or I/O failures (including a worker's). A run that
/// *completes* always returns a report; protocol errors are counted, not
/// fatal.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    // Discover the topology size from the server itself.
    let mut probe = Client::connect(&config.addr, config.seed, config.wire)?;
    let snapshot = probe.roundtrip("SNAPSHOT")?;
    let nodes = snapshot
        .strip_prefix("OK ")
        .and_then(|p| payload_field(p, "nodes"))
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad SNAPSHOT reply: {snapshot}"),
            )
        })? as usize;
    if nodes < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "server topology has fewer than two nodes",
        ));
    }
    let t0 = Instant::now();
    let merged = Mutex::new(WorkerStats::default());
    let errors = Mutex::new(Vec::<io::Error>::new());
    std::thread::scope(|scope| {
        for i in 0..config.clients.max(1) {
            let merged = &merged;
            let errors = &errors;
            scope.spawn(move || match worker(config, i, nodes) {
                Ok(stats) => {
                    let mut m = merged.lock().expect("no worker panics holding the lock");
                    m.ops += stats.ops;
                    m.admitted += stats.admitted;
                    m.rejected += stats.rejected;
                    m.busy_retries += stats.busy_retries;
                    m.protocol_errors += stats.protocol_errors;
                    m.latency.merge(&stats.latency);
                }
                Err(e) => errors
                    .lock()
                    .expect("no worker panics holding the lock")
                    .push(e),
            });
        }
    });
    if let Some(e) = errors
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .next()
    {
        return Err(e);
    }
    let wall = t0.elapsed();
    let stats = merged.into_inner().expect("scope joined all workers");
    let clean_shutdown = if config.shutdown {
        let resp = probe.roundtrip("SHUTDOWN")?;
        Some(resp == "OK violations=0")
    } else {
        None
    };
    Ok(LoadgenReport {
        ops: stats.ops,
        admitted: stats.admitted,
        rejected: stats.rejected,
        busy_retries: stats.busy_retries,
        protocol_errors: stats.protocol_errors,
        latency: stats.latency,
        wall,
        clean_shutdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A server whose queue never drains: every command line is answered
    /// `BUSY`, forever. The retry cap must turn this into an error, not an
    /// infinite 200 µs spin.
    #[test]
    fn busy_retry_is_bounded_against_a_never_draining_server() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().unwrap().to_string();
        let stub = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("one client connects");
            let mut writer = stream.try_clone().unwrap();
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                if line.is_err() || writeln!(writer, "BUSY").is_err() {
                    break;
                }
                let _ = writer.flush();
            }
        });
        let mut client = Client::connect(&addr, 7, WireMode::Text).expect("connect to stub");
        client.backoff.max_retries = 3;
        let mut stats = WorkerStats::default();
        let err = client
            .roundtrip_retrying("ESTABLISH 0 1 100 500 100", &mut stats)
            .expect_err("a never-draining server must exhaust the retry cap");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("after 3 retries"), "{err}");
        assert_eq!(stats.busy_retries, 3, "every attempt before the cap counts");
        drop(client);
        stub.join().unwrap();
    }

    #[test]
    fn backoff_delay_is_exponential_jittered_and_capped() {
        let mut b = Backoff::new(42);
        for attempt in 0..24 {
            let base_us = 200u64 << attempt.min(8) as u32;
            let d = b.delay(attempt);
            assert!(
                d >= Duration::from_micros(base_us / 2) && d < Duration::from_micros(base_us * 2),
                "attempt {attempt}: {d:?} outside jitter band of {base_us} µs"
            );
        }
        // Deterministic for a given seed.
        let (mut x, mut y) = (Backoff::new(9), Backoff::new(9));
        assert_eq!(x.delay(4), y.delay(4));
    }

    #[test]
    fn tally_classifies_replies() {
        let mut s = WorkerStats::default();
        assert_eq!(
            tally("OK id=4 bw=500 hops=2 backups=1", true, &mut s),
            Some(4)
        );
        assert_eq!(s.admitted, 1);
        tally("ERR 202 no feasible primary route", true, &mut s);
        assert_eq!(s.rejected, 1);
        tally("ERR 300 unknown connection c9", false, &mut s);
        assert_eq!(s.protocol_errors, 1);
        tally("garbage", false, &mut s);
        assert_eq!(s.protocol_errors, 2);
        tally("OK freed=500", false, &mut s);
        assert_eq!(s.ops, 0, "tally does not count ops; the send path does");
        assert_eq!(s.admitted, 1);
    }

    #[test]
    fn report_summary_names_the_tail() {
        let mut latency = Histogram::new();
        latency.record(Duration::from_micros(50));
        let report = LoadgenReport {
            ops: 10,
            admitted: 8,
            rejected: 2,
            busy_retries: 1,
            protocol_errors: 0,
            latency,
            wall: Duration::from_millis(100),
            clean_shutdown: Some(true),
        };
        let s = report.summary();
        assert!(s.contains("p50_us=") && s.contains("p99_us=") && s.contains("ops_per_sec="));
        let json = report.to_json(4, 2001);
        assert!(json.contains("\"protocol_errors\":0"));
        assert!(json.contains("\"clients\":4"));
    }
}
