//! Closed-loop multi-client load generation against a running `drqosd`.
//!
//! Each of N worker threads opens its own TCP connection and replays a
//! seeded slice of the repo's standard workload
//! ([`drqos_core::workload::Workload`]): establish a connection, sometimes
//! release one it owns, finally release everything it still holds.
//! Workers are *closed-loop* — at most one in-flight request per
//! connection — so achieved throughput is a fair serving benchmark, not a
//! buffer-depth artifact. Per-request latency is measured client-side
//! (send → response) into the same histogram the daemon uses.
//!
//! Streams are disjoint by construction: a worker only ever releases ids
//! it established itself, so any `ERR` outside admission rejections
//! (codes 200–299) indicates a server bug and fails the run.
//!
//! **Multi-endpoint mode** (`endpoints` non-empty / `--endpoints`)
//! spreads the workers round-robin over several daemons — the cluster's
//! member endpoints — with split-mix seeding per endpoint *then* per
//! worker, so adding an endpoint reshuffles no other endpoint's streams.
//! Per-endpoint tallies land in the runtime JSON, a worker whose daemon
//! dies mid-run records a disconnect (plus its partial stats) instead of
//! failing the run, and **availability** — completed establish attempts
//! over planned — becomes the headline churn metric.

use crate::frame;
use crate::metrics::Histogram;
use crate::protocol::{self, payload_field};
use drqos_bench::runner::derive_seed;
use drqos_core::env::WireMode;
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_core::scenario::{Scenario, ScenarioKind};
use drqos_core::workload::Workload;
use drqos_sim::rng::Rng;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7841` (single-endpoint mode).
    pub addr: String,
    /// Cluster member endpoints; when non-empty, workers are assigned
    /// round-robin over these and `addr` is ignored. A single daemon
    /// dying mid-run is tolerated (counted as disconnects), the rest of
    /// the fleet keeps serving.
    pub endpoints: Vec<String>,
    /// Worker threads (= concurrent client connections).
    pub clients: usize,
    /// `ESTABLISH` attempts per worker.
    pub requests_per_client: usize,
    /// Base seed; worker i runs on `derive_seed(seed, i)`.
    pub seed: u64,
    /// Probability of issuing a `RELEASE` after each establish attempt.
    pub release_prob: f64,
    /// Elastic range minimum (Kbps).
    pub bmin: u64,
    /// Elastic range maximum (Kbps).
    pub bmax: u64,
    /// Increment Δ (Kbps).
    pub delta: u64,
    /// Send `SHUTDOWN` after the run and verify the clean-exit reply.
    pub shutdown: bool,
    /// Wire mode to speak (must match the daemon's `DRQOS_WIRE`).
    pub wire: WireMode,
    /// Arrival-shaping scenario (`DRQOS_SCENARIO`): each worker thins its
    /// request slots against the scenario's rate curve, so a flash-crowd
    /// run concentrates establishes in seeded burst windows while a
    /// diurnal run modulates them piecewise. `Baseline` (and any scenario
    /// whose arrival rate is flat) sends every slot, byte-identical to the
    /// unshaped generator.
    pub scenario: ScenarioKind,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7841".to_string(),
            endpoints: Vec::new(),
            clients: 4,
            requests_per_client: 250,
            seed: 2001,
            release_prob: 0.4,
            bmin: 100,
            bmax: 500,
            delta: 100,
            shutdown: false,
            wire: drqos_core::env::wire(),
            scenario: drqos_core::env::scenario(),
        }
    }
}

/// Per-endpoint tallies of a multi-endpoint run (one row per daemon).
#[derive(Debug, Clone)]
pub struct EndpointStats {
    /// The endpoint address.
    pub addr: String,
    /// Requests answered by this endpoint.
    pub ops: u64,
    /// Connections admitted here.
    pub admitted: u64,
    /// Admission rejections here.
    pub rejected: u64,
    /// `BUSY` replies here.
    pub busy_retries: u64,
    /// Protocol errors here.
    pub protocol_errors: u64,
    /// Workers that lost this endpoint mid-run (daemon crash/EOF).
    pub disconnects: u64,
}

impl EndpointStats {
    fn new(addr: String) -> Self {
        Self {
            addr,
            ops: 0,
            admitted: 0,
            rejected: 0,
            busy_retries: 0,
            protocol_errors: 0,
            disconnects: 0,
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"addr\":\"{}\",\"ops\":{},\"admitted\":{},\"rejected\":{},",
                "\"busy_retries\":{},\"protocol_errors\":{},\"disconnects\":{}}}"
            ),
            self.addr,
            self.ops,
            self.admitted,
            self.rejected,
            self.busy_retries,
            self.protocol_errors,
            self.disconnects,
        )
    }
}

/// Aggregated outcome of a load-generation run.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Total requests sent (establish + release, excluding the initial
    /// snapshot and any final shutdown).
    pub ops: u64,
    /// Connections admitted.
    pub admitted: u64,
    /// Admission rejections (expected under load; codes 100–299).
    pub rejected: u64,
    /// `BUSY` replies (each is retried until the command lands).
    pub busy_retries: u64,
    /// Protocol errors: malformed-command codes (1–99), unexpected
    /// network-level errors (300+), or unparseable replies. Must be zero
    /// for a healthy server.
    pub protocol_errors: u64,
    /// Client-observed request latency.
    pub latency: Histogram,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Whether the final `SHUTDOWN` (if requested) reported a clean,
    /// invariant-checked exit — on *every* reachable endpoint in
    /// multi-endpoint mode.
    pub clean_shutdown: Option<bool>,
    /// Completed establish attempts over planned (`clients` ×
    /// `requests_per_client`). 1.0 when every worker finished its script;
    /// lower when daemons died under churn.
    pub availability: f64,
    /// Workers that lost their endpoint mid-run (multi-endpoint mode).
    pub disconnects: u64,
    /// Per-endpoint tallies, in `endpoints` order (one row — `addr` — in
    /// single-endpoint mode).
    pub endpoints: Vec<EndpointStats>,
}

impl LoadgenReport {
    /// Achieved operations per second across all clients.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }

    /// Human-readable summary (what the binary prints).
    pub fn summary(&self) -> String {
        format!(
            "ops={} admitted={} rejected={} busy_retries={} protocol_errors={} \
             disconnects={} availability={:.3} ops_per_sec={:.0} p50_us={} p99_us={}",
            self.ops,
            self.admitted,
            self.rejected,
            self.busy_retries,
            self.protocol_errors,
            self.disconnects,
            self.availability,
            self.ops_per_sec(),
            self.latency.quantile_us(0.50),
            self.latency.quantile_us(0.99),
        )
    }

    /// JSON for the `runtime.json` convention of `drqos-bench`.
    pub fn to_json(&self, clients: usize, seed: u64) -> String {
        format!(
            concat!(
                "{{\"name\":\"loadgen\",\"clients\":{},\"seed\":{},",
                "\"ops\":{},\"admitted\":{},\"rejected\":{},",
                "\"busy_retries\":{},\"protocol_errors\":{},",
                "\"disconnects\":{},\"availability\":{:.4},",
                "\"wall_s\":{:.6},\"ops_per_sec\":{:.1},",
                "\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},",
                "\"endpoints\":[{}]}}"
            ),
            clients,
            seed,
            self.ops,
            self.admitted,
            self.rejected,
            self.busy_retries,
            self.protocol_errors,
            self.disconnects,
            self.availability,
            self.wall.as_secs_f64(),
            self.ops_per_sec(),
            self.latency.quantile_us(0.50),
            self.latency.quantile_us(0.95),
            self.latency.quantile_us(0.99),
            self.endpoints
                .iter()
                .map(EndpointStats::to_json)
                .collect::<Vec<_>>()
                .join(","),
        )
    }
}

/// One worker's tallies, merged into the report under a mutex at the end.
#[derive(Debug, Default)]
struct WorkerStats {
    ops: u64,
    establishes: u64,
    admitted: u64,
    rejected: u64,
    busy_retries: u64,
    protocol_errors: u64,
    latency: Histogram,
}

/// Bounded `BUSY` retry policy: exponential backoff with seeded jitter.
///
/// The cap comes from `DRQOS_BUSY_RETRIES` (default 64); the delay before
/// retry `attempt` is `200 µs · 2^attempt` capped at ~51 ms, scaled by a
/// seeded jitter factor in `[0.5, 1.5)` so lock-stepped workers do not
/// hammer the queue in phase.
struct Backoff {
    max_retries: usize,
    rng: Rng,
}

impl Backoff {
    fn new(seed: u64) -> Self {
        Self {
            max_retries: drqos_core::env::busy_retries(),
            rng: Rng::seed_from_u64(seed ^ 0xB05F_B05F),
        }
    }

    fn delay(&mut self, attempt: usize) -> Duration {
        let base_us = 200u64 << attempt.min(8) as u32;
        let jitter = self.rng.range_f64(0.5, 1.5);
        Duration::from_micros((base_us as f64 * jitter) as u64)
    }
}

/// A protocol client over one TCP stream, speaking either wire mode;
/// commands and replies cross this boundary as canonical text either
/// way, so the workload logic above is framing-agnostic.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    backoff: Backoff,
    wire: WireMode,
}

impl Client {
    fn connect(addr: &str, backoff_seed: u64, wire: WireMode) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
            backoff: Backoff::new(backoff_seed),
            wire,
        })
    }

    /// Sends one command and reads its one response, rendered as the
    /// canonical response line regardless of wire mode.
    fn roundtrip(&mut self, command: &str) -> io::Result<String> {
        match self.wire {
            WireMode::Text => {
                writeln!(self.writer, "{command}")?;
                self.writer.flush()?;
                let mut resp = String::new();
                if self.reader.read_line(&mut resp)? == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                Ok(resp.trim_end().to_string())
            }
            WireMode::Binary => {
                let req = protocol::parse(command)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.message))?;
                self.writer.write_all(&frame::encode_request(&req))?;
                self.writer.flush()?;
                let body = frame::read_frame(&mut self.reader)?;
                Ok(frame::decode_response(&body)?.to_string())
            }
        }
    }

    /// Round-trips with bounded `BUSY` retry; counts retries into `stats`
    /// and errors out once the `DRQOS_BUSY_RETRIES` cap is exhausted (a
    /// queue that never drains is a server bug, not a reason to spin).
    fn roundtrip_retrying(&mut self, command: &str, stats: &mut WorkerStats) -> io::Result<String> {
        let mut attempt = 0usize;
        loop {
            let resp = self.roundtrip(command)?;
            if resp != "BUSY" {
                return Ok(resp);
            }
            if attempt >= self.backoff.max_retries {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "server still BUSY after {} retries of {command:?}",
                        self.backoff.max_retries
                    ),
                ));
            }
            stats.busy_retries += 1;
            std::thread::sleep(self.backoff.delay(attempt));
            attempt += 1;
        }
    }
}

/// Classifies a reply for the tallies. Returns the admitted id for an
/// establish `OK`.
fn tally(resp: &str, establishing: bool, stats: &mut WorkerStats) -> Option<u64> {
    if let Some(payload) = resp.strip_prefix("OK ") {
        if establishing {
            let id = payload_field(payload, "id");
            if id.is_some() {
                stats.admitted += 1;
            } else {
                stats.protocol_errors += 1;
            }
            return id;
        }
        return None;
    }
    if let Some(rest) = resp.strip_prefix("ERR ") {
        let code: u16 = rest
            .split_ascii_whitespace()
            .next()
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        if (100..300).contains(&code) && establishing {
            // QoS or admission rejection: expected under load.
            stats.rejected += 1;
        } else {
            stats.protocol_errors += 1;
        }
        return None;
    }
    stats.protocol_errors += 1;
    None
}

/// Runs one worker's scripted workload against `endpoint`. Returns the
/// stats gathered so far even on I/O failure, so a daemon dying mid-run
/// costs the run a disconnect, not the worker's whole tally.
fn worker(
    config: &LoadgenConfig,
    endpoint: &str,
    worker_seed: u64,
    nodes: usize,
) -> (WorkerStats, Option<io::Error>) {
    let mut stats = WorkerStats::default();
    let err = worker_script(config, endpoint, worker_seed, nodes, &mut stats).err();
    (stats, err)
}

fn worker_script(
    config: &LoadgenConfig,
    endpoint: &str,
    worker_seed: u64,
    nodes: usize,
    stats: &mut WorkerStats,
) -> io::Result<()> {
    let mut client = Client::connect(endpoint, worker_seed, config.wire)?;
    let mut rng = Rng::seed_from_u64(worker_seed);
    let qos = ElasticQos::new(
        Bandwidth::kbps(config.bmin),
        Bandwidth::kbps(config.bmax),
        Bandwidth::kbps(config.delta),
        1.0,
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let workload = Workload::new(qos);
    let scenario = Scenario::new(config.scenario);
    let peak = scenario.peak_rate(1.0);
    let mut held: Vec<u64> = Vec::new();
    let send_timed = |client: &mut Client,
                      command: &str,
                      establishing: bool,
                      stats: &mut WorkerStats|
     -> io::Result<Option<u64>> {
        let t0 = Instant::now();
        let resp = client.roundtrip_retrying(command, stats)?;
        stats.latency.record(t0.elapsed());
        stats.ops += 1;
        if establishing {
            stats.establishes += 1;
        }
        Ok(tally(&resp, establishing, stats))
    };
    for slot in 0..config.requests_per_client {
        // Virtual time advances one mean inter-arrival per slot; thinning
        // against the scenario's rate curve shapes the arrival stream. A
        // thinned-out slot counts as completed for availability — the
        // scenario skipped it, the daemon did not fail it. Flat-rate
        // scenarios never call the RNG here, so the baseline stream is
        // byte-identical to the unshaped generator.
        let accept = scenario.rate_at(config.seed, 1.0, slot as f64) / peak;
        if accept < 1.0 && !rng.chance(accept) {
            stats.establishes += 1;
            continue;
        }
        let req = workload.request(&mut rng, nodes);
        let command = format!(
            "ESTABLISH {} {} {} {} {}",
            req.src.index(),
            req.dst.index(),
            config.bmin,
            config.bmax,
            config.delta
        );
        if let Some(id) = send_timed(&mut client, &command, true, stats)? {
            held.push(id);
        }
        if !held.is_empty() && rng.chance(config.release_prob) {
            let idx = rng.range_usize(held.len());
            let id = held.swap_remove(idx);
            send_timed(&mut client, &format!("RELEASE {id}"), false, stats)?;
        }
    }
    // Drain: release everything this worker still owns.
    for id in held.drain(..) {
        send_timed(&mut client, &format!("RELEASE {id}"), false, stats)?;
    }
    Ok(())
}

/// Runs the load generator.
///
/// # Errors
///
/// Connection or I/O failures (including a worker's). A run that
/// *completes* always returns a report; protocol errors are counted, not
/// fatal.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let endpoints: Vec<String> = if config.endpoints.is_empty() {
        vec![config.addr.clone()]
    } else {
        config.endpoints.clone()
    };
    let multi = endpoints.len() > 1;
    // Discover the topology size from the first endpoint (every cluster
    // member serves the same replicated topology).
    let mut probe = Client::connect(&endpoints[0], config.seed, config.wire)?;
    let snapshot = probe.roundtrip("SNAPSHOT")?;
    let nodes = snapshot
        .strip_prefix("OK ")
        .and_then(|p| payload_field(p, "nodes"))
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad SNAPSHOT reply: {snapshot}"),
            )
        })? as usize;
    if nodes < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "server topology has fewer than two nodes",
        ));
    }
    let t0 = Instant::now();
    let merged = Mutex::new(WorkerStats::default());
    let per_endpoint = Mutex::new(
        endpoints
            .iter()
            .map(|a| EndpointStats::new(a.clone()))
            .collect::<Vec<_>>(),
    );
    let errors = Mutex::new(Vec::<io::Error>::new());
    std::thread::scope(|scope| {
        for i in 0..config.clients.max(1) {
            let merged = &merged;
            let per_endpoint = &per_endpoint;
            let errors = &errors;
            let eidx = i % endpoints.len();
            let endpoint = &endpoints[eidx];
            // Split-mix chain: per-endpoint stream, then per-worker slice
            // of it — adding an endpoint reshuffles no other endpoint.
            let worker_seed = derive_seed(derive_seed(config.seed, eidx as u64), i as u64);
            scope.spawn(move || {
                let (stats, err) = worker(config, endpoint, worker_seed, nodes);
                {
                    let mut m = merged.lock().expect("no worker panics holding the lock");
                    m.ops += stats.ops;
                    m.establishes += stats.establishes;
                    m.admitted += stats.admitted;
                    m.rejected += stats.rejected;
                    m.busy_retries += stats.busy_retries;
                    m.protocol_errors += stats.protocol_errors;
                    m.latency.merge(&stats.latency);
                }
                {
                    let mut rows = per_endpoint
                        .lock()
                        .expect("no worker panics holding the lock");
                    let row = &mut rows[eidx];
                    row.ops += stats.ops;
                    row.admitted += stats.admitted;
                    row.rejected += stats.rejected;
                    row.busy_retries += stats.busy_retries;
                    row.protocol_errors += stats.protocol_errors;
                    if err.is_some() {
                        row.disconnects += 1;
                    }
                }
                if let Some(e) = err {
                    if !multi {
                        // Single-endpoint mode keeps the strict contract:
                        // any worker I/O failure fails the run.
                        errors
                            .lock()
                            .expect("no worker panics holding the lock")
                            .push(e);
                    }
                }
            });
        }
    });
    if let Some(e) = errors
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .next()
    {
        return Err(e);
    }
    let wall = t0.elapsed();
    let stats = merged.into_inner().expect("scope joined all workers");
    let endpoint_rows = per_endpoint.into_inner().expect("scope joined all workers");
    let disconnects: u64 = endpoint_rows.iter().map(|r| r.disconnects).sum();
    let planned = (config.clients.max(1) * config.requests_per_client) as f64;
    let availability = if planned > 0.0 {
        stats.establishes as f64 / planned
    } else {
        1.0
    };
    let clean_shutdown = if config.shutdown {
        let mut all_clean = true;
        let mut reachable = 0usize;
        for (idx, addr) in endpoints.iter().enumerate() {
            let resp = if idx == 0 {
                probe.roundtrip("SHUTDOWN")
            } else {
                Client::connect(addr, config.seed, config.wire)
                    .and_then(|mut c| c.roundtrip("SHUTDOWN"))
            };
            match resp {
                Ok(r) => {
                    reachable += 1;
                    all_clean &= r == "OK violations=0";
                }
                // A crashed member cannot be shut down; in multi-endpoint
                // mode its absence is the expected churn outcome.
                Err(e) if multi => {
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
        Some(all_clean && reachable > 0)
    } else {
        None
    };
    Ok(LoadgenReport {
        ops: stats.ops,
        admitted: stats.admitted,
        rejected: stats.rejected,
        busy_retries: stats.busy_retries,
        protocol_errors: stats.protocol_errors,
        latency: stats.latency,
        wall,
        clean_shutdown,
        availability,
        disconnects,
        endpoints: endpoint_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A server whose queue never drains: every command line is answered
    /// `BUSY`, forever. The retry cap must turn this into an error, not an
    /// infinite 200 µs spin.
    #[test]
    fn busy_retry_is_bounded_against_a_never_draining_server() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().unwrap().to_string();
        let stub = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("one client connects");
            let mut writer = stream.try_clone().unwrap();
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                if line.is_err() || writeln!(writer, "BUSY").is_err() {
                    break;
                }
                let _ = writer.flush();
            }
        });
        let mut client = Client::connect(&addr, 7, WireMode::Text).expect("connect to stub");
        client.backoff.max_retries = 3;
        let mut stats = WorkerStats::default();
        let err = client
            .roundtrip_retrying("ESTABLISH 0 1 100 500 100", &mut stats)
            .expect_err("a never-draining server must exhaust the retry cap");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("after 3 retries"), "{err}");
        assert_eq!(stats.busy_retries, 3, "every attempt before the cap counts");
        drop(client);
        stub.join().unwrap();
    }

    #[test]
    fn backoff_delay_is_exponential_jittered_and_capped() {
        let mut b = Backoff::new(42);
        for attempt in 0..24 {
            let base_us = 200u64 << attempt.min(8) as u32;
            let d = b.delay(attempt);
            assert!(
                d >= Duration::from_micros(base_us / 2) && d < Duration::from_micros(base_us * 2),
                "attempt {attempt}: {d:?} outside jitter band of {base_us} µs"
            );
        }
        // Deterministic for a given seed.
        let (mut x, mut y) = (Backoff::new(9), Backoff::new(9));
        assert_eq!(x.delay(4), y.delay(4));
    }

    #[test]
    fn tally_classifies_replies() {
        let mut s = WorkerStats::default();
        assert_eq!(
            tally("OK id=4 bw=500 hops=2 backups=1", true, &mut s),
            Some(4)
        );
        assert_eq!(s.admitted, 1);
        tally("ERR 202 no feasible primary route", true, &mut s);
        assert_eq!(s.rejected, 1);
        tally("ERR 300 unknown connection c9", false, &mut s);
        assert_eq!(s.protocol_errors, 1);
        tally("garbage", false, &mut s);
        assert_eq!(s.protocol_errors, 2);
        tally("OK freed=500", false, &mut s);
        assert_eq!(s.ops, 0, "tally does not count ops; the send path does");
        assert_eq!(s.admitted, 1);
    }

    #[test]
    fn report_summary_names_the_tail() {
        let mut latency = Histogram::new();
        latency.record(Duration::from_micros(50));
        let report = LoadgenReport {
            ops: 10,
            admitted: 8,
            rejected: 2,
            busy_retries: 1,
            protocol_errors: 0,
            latency,
            wall: Duration::from_millis(100),
            clean_shutdown: Some(true),
            availability: 0.875,
            disconnects: 1,
            endpoints: vec![
                EndpointStats {
                    addr: "127.0.0.1:7901".into(),
                    ops: 6,
                    admitted: 5,
                    rejected: 1,
                    busy_retries: 1,
                    protocol_errors: 0,
                    disconnects: 0,
                },
                EndpointStats {
                    addr: "127.0.0.1:7902".into(),
                    ops: 4,
                    admitted: 3,
                    rejected: 1,
                    busy_retries: 0,
                    protocol_errors: 0,
                    disconnects: 1,
                },
            ],
        };
        let s = report.summary();
        assert!(s.contains("p50_us=") && s.contains("p99_us=") && s.contains("ops_per_sec="));
        assert!(s.contains("availability=0.875") && s.contains("disconnects=1"));
        let json = report.to_json(4, 2001);
        assert!(json.contains("\"protocol_errors\":0"));
        assert!(json.contains("\"clients\":4"));
        assert!(json.contains("\"availability\":0.8750"));
        assert!(json.contains("\"endpoints\":[{\"addr\":\"127.0.0.1:7901\""));
        assert!(json.contains("\"disconnects\":1"));
    }
}
