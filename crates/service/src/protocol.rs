//! The wire protocol: a line-based, integer-only text format.
//!
//! One request per line, one response line per request. Requests are an
//! uppercase verb followed by space-separated non-negative integers;
//! responses are `OK <key>=<value>...`, `ERR <code> <message>`, or the
//! bare backpressure line `BUSY`. Every response except `STATS` is a pure
//! function of the command sequence, so whole sessions can be replayed
//! byte-exact against golden transcripts (see `SERVICE.md` for the full
//! grammar).

use crate::error::{ProtocolError, CODE_INTERNAL};
use std::fmt;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `ESTABLISH <src> <dst> <bmin> <bmax> <delta>` — admit a
    /// DR-connection with elastic QoS `[bmin, bmax]` in steps of `delta`
    /// (all in Kbps).
    Establish {
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
        /// Minimum bandwidth (Kbps).
        bmin: u64,
        /// Maximum bandwidth (Kbps).
        bmax: u64,
        /// Increment size Δ (Kbps).
        delta: u64,
    },
    /// `RELEASE <id>` — terminate a connection.
    Release {
        /// Connection id as returned by `ESTABLISH`.
        id: u64,
    },
    /// `FAIL-LINK <link>` — inject a link failure.
    FailLink {
        /// Link index.
        link: usize,
    },
    /// `REPAIR-LINK <link>` — repair a failed link.
    RepairLink {
        /// Link index.
        link: usize,
    },
    /// `FAIL-NODE <node>` — fail every up link adjacent to a node.
    FailNode {
        /// Node index.
        node: usize,
    },
    /// `FAIL-SRLG <group>` — fail every up link in a shared-risk group.
    FailSrlg {
        /// Shared-risk group index.
        group: usize,
    },
    /// `REPAIR-SRLG <group>` — repair every down link in a shared-risk
    /// group.
    RepairSrlg {
        /// Shared-risk group index.
        group: usize,
    },
    /// `SNAPSHOT` — a one-line deterministic summary of network state.
    Snapshot,
    /// `STATS` — request-metrics counters and latency percentiles.
    Stats,
    /// `SHUTDOWN` — drain in-flight requests, check invariants, exit.
    Shutdown,
}

impl Request {
    /// Renders the canonical text line for this request (the inverse of
    /// [`parse`]): the binary framing layer decodes frames to `Request`
    /// and re-renders them so both wire modes share one engine path.
    pub fn render(&self) -> String {
        match *self {
            Request::Establish {
                src,
                dst,
                bmin,
                bmax,
                delta,
            } => format!("ESTABLISH {src} {dst} {bmin} {bmax} {delta}"),
            Request::Release { id } => format!("RELEASE {id}"),
            Request::FailLink { link } => format!("FAIL-LINK {link}"),
            Request::RepairLink { link } => format!("REPAIR-LINK {link}"),
            Request::FailNode { node } => format!("FAIL-NODE {node}"),
            Request::FailSrlg { group } => format!("FAIL-SRLG {group}"),
            Request::RepairSrlg { group } => format!("REPAIR-SRLG {group}"),
            Request::Snapshot => "SNAPSHOT".to_string(),
            Request::Stats => "STATS".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }

    /// The verb this request was parsed from (for metrics labels).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Establish { .. } => "ESTABLISH",
            Request::Release { .. } => "RELEASE",
            Request::FailLink { .. } => "FAIL-LINK",
            Request::RepairLink { .. } => "REPAIR-LINK",
            Request::FailNode { .. } => "FAIL-NODE",
            Request::FailSrlg { .. } => "FAIL-SRLG",
            Request::RepairSrlg { .. } => "REPAIR-SRLG",
            Request::Snapshot => "SNAPSHOT",
            Request::Stats => "STATS",
            Request::Shutdown => "SHUTDOWN",
        }
    }
}

/// A response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `OK <payload>` — the request succeeded.
    Ok(String),
    /// `ERR <code> <message>` — the request failed; `code` is stable (see
    /// `drqos_core::wire` and [`crate::error`]).
    Err {
        /// Stable numeric error code.
        code: u16,
        /// Deterministic message.
        message: String,
    },
    /// `BUSY` — the command queue is full; retry later (backpressure, not
    /// an error: the command was never enqueued).
    Busy,
}

impl Response {
    /// Whether this is an `ERR` response.
    pub fn is_err(&self) -> bool {
        matches!(self, Response::Err { .. })
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ok(payload) => write!(f, "OK {payload}"),
            Response::Err { code, message } => write!(f, "ERR {code} {message}"),
            Response::Busy => write!(f, "BUSY"),
        }
    }
}

impl From<ProtocolError> for Response {
    fn from(e: ProtocolError) -> Self {
        Response::Err {
            code: e.code,
            message: e.message,
        }
    }
}

fn parse_u64(arg: &str) -> Result<u64, ProtocolError> {
    arg.parse::<u64>().map_err(|_| ProtocolError::bad_int(arg))
}

fn parse_usize(arg: &str) -> Result<usize, ProtocolError> {
    arg.parse::<usize>()
        .map_err(|_| ProtocolError::bad_int(arg))
}

fn expect_args(verb: &str, args: &[&str], n: usize) -> Result<(), ProtocolError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(ProtocolError::arg_count(verb, n, args.len()))
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ProtocolError`] (codes 1–4) for an empty line, unknown
/// verb, wrong argument count, or non-integer argument.
pub fn parse(line: &str) -> Result<Request, ProtocolError> {
    let mut tokens = line.split_ascii_whitespace();
    let Some(verb) = tokens.next() else {
        return Err(ProtocolError::empty());
    };
    let args: Vec<&str> = tokens.collect();
    // Slice patterns instead of `args[i]` indexing keep this parser
    // mechanically panic-free (the `no-panic-daemon` lint checks it).
    match verb {
        "ESTABLISH" => match args.as_slice() {
            [src, dst, bmin, bmax, delta] => Ok(Request::Establish {
                src: parse_usize(src)?,
                dst: parse_usize(dst)?,
                bmin: parse_u64(bmin)?,
                bmax: parse_u64(bmax)?,
                delta: parse_u64(delta)?,
            }),
            _ => Err(ProtocolError::arg_count(verb, 5, args.len())),
        },
        "RELEASE" => match args.as_slice() {
            [id] => Ok(Request::Release { id: parse_u64(id)? }),
            _ => Err(ProtocolError::arg_count(verb, 1, args.len())),
        },
        "FAIL-LINK" => match args.as_slice() {
            [link] => Ok(Request::FailLink {
                link: parse_usize(link)?,
            }),
            _ => Err(ProtocolError::arg_count(verb, 1, args.len())),
        },
        "REPAIR-LINK" => match args.as_slice() {
            [link] => Ok(Request::RepairLink {
                link: parse_usize(link)?,
            }),
            _ => Err(ProtocolError::arg_count(verb, 1, args.len())),
        },
        "FAIL-NODE" => match args.as_slice() {
            [node] => Ok(Request::FailNode {
                node: parse_usize(node)?,
            }),
            _ => Err(ProtocolError::arg_count(verb, 1, args.len())),
        },
        "FAIL-SRLG" => match args.as_slice() {
            [group] => Ok(Request::FailSrlg {
                group: parse_usize(group)?,
            }),
            _ => Err(ProtocolError::arg_count(verb, 1, args.len())),
        },
        "REPAIR-SRLG" => match args.as_slice() {
            [group] => Ok(Request::RepairSrlg {
                group: parse_usize(group)?,
            }),
            _ => Err(ProtocolError::arg_count(verb, 1, args.len())),
        },
        "SNAPSHOT" => {
            expect_args(verb, &args, 0)?;
            Ok(Request::Snapshot)
        }
        "STATS" => {
            expect_args(verb, &args, 0)?;
            Ok(Request::Stats)
        }
        "SHUTDOWN" => {
            expect_args(verb, &args, 0)?;
            Ok(Request::Shutdown)
        }
        other => Err(ProtocolError::unknown_command(other)),
    }
}

/// Parses a rendered response line back into a [`Response`] (the inverse
/// of `Response`'s `Display`). Engine-produced lines always parse; an
/// unrecognized shape maps onto the internal-error code rather than
/// panicking, since the binary reply path runs this on the daemon side.
pub fn parse_response(line: &str) -> Response {
    if line == "BUSY" {
        return Response::Busy;
    }
    if line == "OK" {
        return Response::Ok(String::new());
    }
    if let Some(payload) = line.strip_prefix("OK ") {
        return Response::Ok(payload.to_string());
    }
    if let Some(rest) = line.strip_prefix("ERR ") {
        let (code_str, message) = match rest.split_once(' ') {
            Some((c, m)) => (c, m),
            None => (rest, ""),
        };
        if let Ok(code) = code_str.parse::<u16>() {
            return Response::Err {
                code,
                message: message.to_string(),
            };
        }
    }
    Response::Err {
        code: CODE_INTERNAL,
        message: format!("internal error: unrenderable response line {line:?}"),
    }
}

/// Extracts the integer value of `key=<n>` from an `OK` payload (used by
/// the load generator and tests to read structured replies).
pub fn payload_field(payload: &str, key: &str) -> Option<u64> {
    payload.split_ascii_whitespace().find_map(|tok| {
        let (k, v) = tok.split_once('=')?;
        if k == key {
            v.parse().ok()
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{CODE_ARG_COUNT, CODE_BAD_INT, CODE_EMPTY, CODE_UNKNOWN_COMMAND};

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse("ESTABLISH 0 3 100 500 100").unwrap(),
            Request::Establish {
                src: 0,
                dst: 3,
                bmin: 100,
                bmax: 500,
                delta: 100
            }
        );
        assert_eq!(parse("RELEASE 7").unwrap(), Request::Release { id: 7 });
        assert_eq!(parse("FAIL-LINK 2").unwrap(), Request::FailLink { link: 2 });
        assert_eq!(
            parse("REPAIR-LINK 2").unwrap(),
            Request::RepairLink { link: 2 }
        );
        assert_eq!(parse("FAIL-NODE 4").unwrap(), Request::FailNode { node: 4 });
        assert_eq!(
            parse("FAIL-SRLG 1").unwrap(),
            Request::FailSrlg { group: 1 }
        );
        assert_eq!(
            parse("REPAIR-SRLG 1").unwrap(),
            Request::RepairSrlg { group: 1 }
        );
        assert_eq!(parse("SNAPSHOT").unwrap(), Request::Snapshot);
        assert_eq!(parse("STATS").unwrap(), Request::Stats);
        assert_eq!(parse("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn tolerates_extra_whitespace() {
        assert_eq!(
            parse("  RELEASE   9  ").unwrap(),
            Request::Release { id: 9 }
        );
    }

    #[test]
    fn rejects_malformed_lines_with_stable_codes() {
        assert_eq!(parse("").unwrap_err().code, CODE_EMPTY);
        assert_eq!(parse("   ").unwrap_err().code, CODE_EMPTY);
        assert_eq!(
            parse("FROBNICATE 1").unwrap_err().code,
            CODE_UNKNOWN_COMMAND
        );
        assert_eq!(parse("RELEASE").unwrap_err().code, CODE_ARG_COUNT);
        assert_eq!(parse("RELEASE 1 2").unwrap_err().code, CODE_ARG_COUNT);
        assert_eq!(parse("RELEASE x").unwrap_err().code, CODE_BAD_INT);
        assert_eq!(parse("SNAPSHOT now").unwrap_err().code, CODE_ARG_COUNT);
        // Verbs are case-sensitive by design (the grammar is uppercase).
        assert_eq!(parse("release 1").unwrap_err().code, CODE_UNKNOWN_COMMAND);
    }

    #[test]
    fn responses_render_one_line() {
        assert_eq!(
            Response::Ok("id=3 bw=500".into()).to_string(),
            "OK id=3 bw=500"
        );
        assert_eq!(
            Response::Err {
                code: 300,
                message: "unknown connection c9".into()
            }
            .to_string(),
            "ERR 300 unknown connection c9"
        );
        assert_eq!(Response::Busy.to_string(), "BUSY");
    }

    #[test]
    fn payload_fields_are_extractable() {
        let payload = "conns=5 bw=2500 dropped=0";
        assert_eq!(payload_field(payload, "bw"), Some(2500));
        assert_eq!(payload_field(payload, "conns"), Some(5));
        assert_eq!(payload_field(payload, "missing"), None);
    }
}
