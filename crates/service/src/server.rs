//! The `drqosd` server: std-only TCP, single-writer event loop.
//!
//! Architecture (one box per thread):
//!
//! ```text
//!  client ──TCP──▶ reader thread ──try_send──▶ bounded queue ─▶ event loop
//!                      ▲   │  (full → BUSY)     (DRQOS_QUEUE_DEPTH)   │
//!                      │   └──────────── reply channel ◀──────────────┘
//!                    accept loop (spawns one reader per connection)
//! ```
//!
//! * Exactly one thread (the event loop) ever touches the [`Engine`] and
//!   its [`drqos_core::network::Network`] — no locks on the hot path.
//! * Reader threads parse nothing; they frame lines and `try_send` them
//!   into a *bounded* queue. A full queue answers `BUSY` immediately
//!   instead of buffering without bound (backpressure).
//! * The event loop drains up to `DRQOS_BATCH` commands per tick, so a
//!   burst pays the channel-wakeup cost once, not per command.
//! * `SHUTDOWN` is graceful: the loop stops accepting, drains every
//!   queued command, runs `check_invariants()`, and only then replies.

use crate::engine::{Engine, Handled};
use crate::error::ProtocolError;
use crate::frame::{self, Fill, FrameReader};
use crate::protocol::{self, Response};
use drqos_core::env::WireMode;
use drqos_core::network::Network;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

pub use drqos_core::env::{DEFAULT_BATCH, DEFAULT_QUEUE_DEPTH};

/// How often blocked I/O re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Backstop for the shutdown drain: after this many *consecutive* empty
/// poll intervals the loop stops waiting for reader threads (a reader
/// always exits within one interval of the flag, so hitting this means a
/// reader thread is wedged, not slow).
const SHUTDOWN_DRAIN_POLLS: usize = 250;

/// Decrements the in-flight reader count when a reader thread exits, on
/// every path (panic included).
struct ReaderGuard(Arc<AtomicUsize>);

impl Drop for ReaderGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// `DRQOS_BATCH` (minimum 1; default [`DEFAULT_BATCH`]), read through the
/// [`drqos_core::env`] registry.
pub fn batch_from_env() -> usize {
    drqos_core::env::batch()
}

/// `DRQOS_QUEUE_DEPTH` (minimum 1; default [`DEFAULT_QUEUE_DEPTH`]), read
/// through the [`drqos_core::env`] registry.
pub fn queue_depth_from_env() -> usize {
    drqos_core::env::queue_depth()
}

/// One queued command: the raw line and where to send the response.
struct Command {
    line: String,
    reply: mpsc::Sender<String>,
}

/// What a finished server run reports.
#[derive(Debug)]
pub struct ServiceReport {
    /// Invariant violations found by the shutdown check (clean exit ⇔
    /// empty).
    pub violations: usize,
    /// Final request-metrics dump (the `service_runtime.json` payload).
    pub metrics_json: String,
    /// Total requests handled by the event loop.
    pub ops: u64,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Engine,
    batch: usize,
    queue_depth: usize,
    wire: WireMode,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over `net`,
    /// reading `DRQOS_BATCH` / `DRQOS_QUEUE_DEPTH` / `DRQOS_WIRE` from the
    /// environment.
    ///
    /// # Errors
    ///
    /// Any socket-binding error.
    pub fn bind(addr: &str, net: Network) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine: Engine::new(net),
            batch: batch_from_env(),
            queue_depth: queue_depth_from_env(),
            wire: drqos_core::env::wire(),
        })
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates `TcpListener::local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Overrides the batch size (tests; production uses `DRQOS_BATCH`).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Overrides the queue depth (tests; production uses
    /// `DRQOS_QUEUE_DEPTH`).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Overrides the wire mode (tests; production uses `DRQOS_WIRE`).
    pub fn with_wire(mut self, wire: WireMode) -> Self {
        self.wire = wire;
        self
    }

    /// The wire mode this server will speak.
    pub fn wire(&self) -> WireMode {
        self.wire
    }

    /// Serves until a `SHUTDOWN` command completes, then returns the final
    /// report. Blocks the calling thread (spawn it for in-process use).
    ///
    /// # Errors
    ///
    /// Socket-configuration errors; per-connection I/O errors only
    /// terminate that connection's reader.
    pub fn run(mut self) -> io::Result<ServiceReport> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::sync_channel::<Command>(self.queue_depth);
        let shutdown = Arc::new(AtomicBool::new(false));
        let readers = Arc::new(AtomicUsize::new(0));
        let busy = self.engine.busy_counter();
        let wire = self.wire;
        let report = thread::scope(|scope| {
            let accept_shutdown = Arc::clone(&shutdown);
            let accept_readers = Arc::clone(&readers);
            let listener = &self.listener;
            scope.spawn(move || {
                accept_loop(listener, tx, accept_shutdown, accept_readers, busy, wire)
            });
            event_loop(&mut self.engine, rx, self.batch, &shutdown, &readers)
        });
        Ok(report)
    }
}

/// Accepts connections until shutdown, spawning one detached reader thread
/// per connection. Detached is safe: readers own every handle they touch
/// (stream, queue sender, flag clones) and exit within one poll interval
/// of the shutdown flag rising.
fn accept_loop(
    listener: &TcpListener,
    tx: SyncSender<Command>,
    shutdown: Arc<AtomicBool>,
    readers: Arc<AtomicUsize>,
    busy: Arc<AtomicU64>,
    wire: WireMode,
) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                let busy = Arc::clone(&busy);
                // Count the reader *before* it can send anything, so the
                // event loop's shutdown drain never undercounts.
                readers.fetch_add(1, Ordering::AcqRel);
                let guard = ReaderGuard(Arc::clone(&readers));
                thread::spawn(move || {
                    let _guard = guard;
                    let _ = match wire {
                        WireMode::Text => reader_loop(stream, &tx, &shutdown, &busy),
                        WireMode::Binary => binary_reader_loop(stream, &tx, &shutdown, &busy),
                    };
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
    // Dropping `tx` here lets the event loop observe disconnection once
    // every reader is gone too.
}

/// Frames lines from one client and shuttles them through the queue.
fn reader_loop(
    stream: TcpStream,
    tx: &SyncSender<Command>,
    shutdown: &AtomicBool,
    busy: &AtomicU64,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // A timeout can fire mid-line (the peer's write may be
                // split across packets); keep whatever `read_line` already
                // appended and resume reading the same line.
                if shutdown.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']).to_string();
        line.clear();
        if shutdown.load(Ordering::Acquire) {
            // Answer the late line, then close: staying in the loop would
            // let a chatty client stall the shutdown drain (which waits
            // for reader threads) indefinitely.
            let resp: Response = ProtocolError::shutting_down().into();
            writeln!(writer, "{resp}")?;
            writer.flush()?;
            return Ok(());
        }
        let cmd = Command {
            line: trimmed,
            reply: reply_tx.clone(),
        };
        match tx.try_send(cmd) {
            Ok(()) => {
                // Closed-loop per connection: wait for this command's
                // response before reading the next line, so responses can
                // never interleave out of order.
                match reply_rx.recv() {
                    Ok(resp) => writeln!(writer, "{resp}")?,
                    Err(_) => {
                        // Event loop gone mid-request (hard stop).
                        let resp: Response = ProtocolError::shutting_down().into();
                        writeln!(writer, "{resp}")?;
                        return Ok(());
                    }
                }
            }
            Err(TrySendError::Full(_)) => {
                busy.fetch_add(1, Ordering::Relaxed);
                writeln!(writer, "{}", Response::Busy)?;
            }
            Err(TrySendError::Disconnected(_)) => {
                let resp: Response = ProtocolError::shutting_down().into();
                writeln!(writer, "{resp}")?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// Serves one drained batch of commands through the engine's batch entry
/// point (runs of consecutive `ESTABLISH`es share one planning pass),
/// sending every reply back to its reader. `SHUTDOWN` replies are
/// deferred into `shutdown_replies`.
fn serve_batch(
    engine: &mut Engine,
    batch: &mut Vec<Command>,
    shutdown_replies: &mut Vec<mpsc::Sender<String>>,
) {
    let mut lines = Vec::with_capacity(batch.len());
    let mut replies = Vec::with_capacity(batch.len());
    for cmd in batch.drain(..) {
        lines.push(cmd.line);
        replies.push(cmd.reply);
    }
    for (handled, reply) in engine.handle_server_batch(&lines).into_iter().zip(replies) {
        match handled {
            Handled::Reply(resp) => {
                // A send error means the reader died; the state change
                // already happened, so just move on.
                let _ = reply.send(resp.to_string());
            }
            Handled::ShutdownRequested => shutdown_replies.push(reply),
        }
    }
}

/// Frames binary requests from one client (`DRQOS_WIRE=binary`) and
/// shuttles them through the same queue as text lines: each decoded frame
/// is re-rendered as its canonical text command, so the event loop and
/// engine are wire-agnostic. Replies come back as rendered text and are
/// re-encoded as response frames. Frame-level decode errors are answered
/// directly with their text-protocol code (1–4) without occupying a
/// queue slot; an oversized frame is unrecoverable and closes the
/// connection after an error frame.
fn binary_reader_loop(
    stream: TcpStream,
    tx: &SyncSender<Command>,
    shutdown: &AtomicBool,
    busy: &AtomicU64,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = stream;
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let mut framer = FrameReader::new();
    let send_resp = |writer: &mut TcpStream, resp: &Response| -> io::Result<()> {
        writer.write_all(&frame::encode_response(resp))?;
        writer.flush()
    };
    loop {
        let body = match framer.next_frame() {
            Ok(Some(body)) => body,
            Ok(None) => {
                match framer.fill(&mut reader)? {
                    Fill::Data => {}
                    Fill::Eof => return Ok(()), // client hung up
                    Fill::Idle => {
                        if shutdown.load(Ordering::Acquire) && !framer_has_partial(&framer) {
                            return Ok(());
                        }
                    }
                }
                continue;
            }
            Err(e) => {
                // Oversized announcement: the stream cannot be resynced.
                let resp: Response = ProtocolError::bad_int(&e.to_string()).into();
                let _ = send_resp(&mut writer, &resp);
                return Err(e);
            }
        };
        if shutdown.load(Ordering::Acquire) {
            // Answer the late frame, then close (same rationale as the
            // text reader: a chatty client must not stall the drain).
            let resp: Response = ProtocolError::shutting_down().into();
            send_resp(&mut writer, &resp)?;
            return Ok(());
        }
        let req = match frame::decode_request(&body) {
            Ok(req) => req,
            Err(pe) => {
                send_resp(&mut writer, &pe.into())?;
                continue;
            }
        };
        let cmd = Command {
            line: req.render(),
            reply: reply_tx.clone(),
        };
        match tx.try_send(cmd) {
            Ok(()) => match reply_rx.recv() {
                Ok(resp) => send_resp(&mut writer, &protocol::parse_response(&resp))?,
                Err(_) => {
                    // Event loop gone mid-request (hard stop).
                    let resp: Response = ProtocolError::shutting_down().into();
                    send_resp(&mut writer, &resp)?;
                    return Ok(());
                }
            },
            Err(TrySendError::Full(_)) => {
                busy.fetch_add(1, Ordering::Relaxed);
                send_resp(&mut writer, &Response::Busy)?;
            }
            Err(TrySendError::Disconnected(_)) => {
                let resp: Response = ProtocolError::shutting_down().into();
                send_resp(&mut writer, &resp)?;
                return Ok(());
            }
        }
    }
}

/// Whether the accumulator holds a partial frame (keep polling for its
/// remainder even across the shutdown flag, mirroring the text reader's
/// mid-line tolerance).
fn framer_has_partial(framer: &FrameReader) -> bool {
    !framer.is_empty()
}

/// The single-writer event loop: drains the queue in batches and applies
/// every command to the engine.
fn event_loop(
    engine: &mut Engine,
    rx: Receiver<Command>,
    batch_size: usize,
    shutdown: &AtomicBool,
    readers: &AtomicUsize,
) -> ServiceReport {
    let mut batch: Vec<Command> = Vec::with_capacity(batch_size);
    let mut shutdown_replies: Vec<mpsc::Sender<String>> = Vec::new();
    'serve: loop {
        match rx.recv() {
            Ok(cmd) => batch.push(cmd),
            Err(_) => break 'serve, // every sender gone without SHUTDOWN
        }
        while batch.len() < batch_size {
            match rx.try_recv() {
                Ok(cmd) => batch.push(cmd),
                Err(_) => break,
            }
        }
        serve_batch(engine, &mut batch, &mut shutdown_replies);
        if !shutdown_replies.is_empty() {
            // Graceful drain: stop accepting, then keep serving until
            // every reader thread has exited. A reader that passed its
            // shutdown-flag check may still be about to `send`, so a
            // single try_recv sweep here would race it and strand the
            // command (and the client waiting on its reply). Readers
            // blocked on the final SHUTDOWN reply are expected survivors;
            // everyone else exits within one poll interval of the flag.
            shutdown.store(true, Ordering::Release);
            let mut idle_polls = 0usize;
            while readers.load(Ordering::Acquire) > shutdown_replies.len()
                && idle_polls < SHUTDOWN_DRAIN_POLLS
            {
                match rx.recv_timeout(POLL_INTERVAL) {
                    Ok(cmd) => {
                        idle_polls = 0;
                        batch.push(cmd);
                        serve_batch(engine, &mut batch, &mut shutdown_replies);
                    }
                    Err(RecvTimeoutError::Timeout) => idle_polls += 1,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // With all racing readers gone, one last sweep empties
            // anything that landed between the count check and now.
            while let Ok(cmd) = rx.try_recv() {
                batch.push(cmd);
            }
            serve_batch(engine, &mut batch, &mut shutdown_replies);
            break 'serve;
        }
    }
    shutdown.store(true, Ordering::Release);
    let final_resp = engine.finish_shutdown();
    let violations = match &final_resp {
        Response::Ok(_) => 0,
        _ => engine.network().check_invariants().len(),
    };
    for reply in shutdown_replies {
        let _ = reply.send(final_resp.to_string());
    }
    ServiceReport {
        violations,
        metrics_json: engine.metrics().to_json("drqosd"),
        ops: engine.metrics().total_ops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::network::NetworkConfig;
    use drqos_topology::regular;

    fn client_session(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            replies.push(resp.trim_end().to_string());
        }
        replies
    }

    fn test_server() -> (SocketAddr, thread::JoinHandle<io::Result<ServiceReport>>) {
        let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let server = Server::bind("127.0.0.1:0", net).expect("bind ephemeral");
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run());
        (addr, handle)
    }

    #[test]
    fn serves_a_session_and_shuts_down_clean() {
        let (addr, handle) = test_server();
        let replies = client_session(
            addr,
            &[
                "ESTABLISH 0 3 100 500 100",
                "SNAPSHOT",
                "RELEASE 0",
                "BOGUS",
                "SHUTDOWN",
            ],
        );
        assert!(replies[0].starts_with("OK id=0"), "{}", replies[0]);
        assert!(replies[1].starts_with("OK conns=1"), "{}", replies[1]);
        assert_eq!(replies[2], "OK freed=500");
        assert!(replies[3].starts_with("ERR 2 "), "{}", replies[3]);
        assert_eq!(replies[4], "OK violations=0");
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.violations, 0);
        assert_eq!(report.ops, 5);
        assert!(report.metrics_json.contains("\"admitted\":1"));
    }

    /// The drain-race regression, white-box: a "reader" that passed the
    /// shutdown-flag check gets preempted while the event loop processes
    /// `SHUTDOWN`, then sends. Before the in-flight-reader count the loop
    /// swept the queue exactly once after raising the flag, so this send
    /// landed in a channel nobody would ever read — the command was lost
    /// and the client's reply channel just died. Now the drain waits for
    /// racing readers, so the command must receive a real engine reply.
    #[test]
    fn shutdown_drain_serves_a_command_sent_after_the_flag_check() {
        let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let mut engine = Engine::new(net);
        let (tx, rx) = mpsc::sync_channel::<Command>(16);
        let shutdown = AtomicBool::new(false);
        let readers = AtomicUsize::new(0);
        let report = thread::scope(|scope| {
            // The raced reader: flag demonstrably clear at its "check",
            // send issued long after the event loop has begun shutdown.
            readers.fetch_add(1, Ordering::AcqRel);
            let late_tx = tx.clone();
            let shutdown_ref = &shutdown;
            let readers_ref = &readers;
            let late = scope.spawn(move || {
                assert!(!shutdown_ref.load(Ordering::Acquire), "race precondition");
                thread::sleep(Duration::from_millis(200));
                let (reply_tx, reply_rx) = mpsc::channel();
                late_tx
                    .send(Command {
                        line: "ESTABLISH 0 3 100 500 100".into(),
                        reply: reply_tx,
                    })
                    .expect("drain must still be receiving");
                let resp = reply_rx
                    .recv()
                    .expect("raced command must get an engine reply, not a dead channel");
                readers_ref.fetch_sub(1, Ordering::AcqRel);
                resp
            });
            // The shutdown reader, awaiting the final reply.
            readers.fetch_add(1, Ordering::AcqRel);
            let (shut_tx, shut_rx) = mpsc::channel();
            tx.send(Command {
                line: "SHUTDOWN".into(),
                reply: shut_tx,
            })
            .unwrap();
            drop(tx);
            let report = event_loop(&mut engine, rx, 8, &shutdown, &readers);
            assert_eq!(shut_rx.recv().unwrap(), "OK violations=0");
            readers.fetch_sub(1, Ordering::AcqRel);
            let resp = late.join().unwrap();
            assert!(resp.starts_with("OK id="), "raced ESTABLISH served: {resp}");
            report
        });
        assert_eq!(report.ops, 2, "engine must have seen both commands");
        assert_eq!(report.violations, 0);
    }

    /// The drain-race regression, end to end: four clients hammer
    /// `ESTABLISH` while a fifth fires `SHUTDOWN` mid-burst. Every client
    /// must see a well-formed reply for each command until the server
    /// closes on it — never a hang, never a torn line — and the daemon
    /// must still exit invariant-clean.
    #[test]
    fn shutdown_concurrent_with_establish_bursts_never_strands_a_client() {
        let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let server = Server::bind("127.0.0.1:0", net).unwrap().with_batch(4);
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run());
        thread::scope(|scope| {
            for c in 0..4usize {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).unwrap();
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    for _ in 0..100 {
                        if writeln!(writer, "ESTABLISH {} {} 100 500 100", c, (c + 3) % 6).is_err()
                        {
                            break; // server closed mid-burst: allowed
                        }
                        let mut resp = String::new();
                        match reader.read_line(&mut resp) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {
                                let r = resp.trim_end();
                                assert!(
                                    r.starts_with("OK ") || r.starts_with("ERR ") || r == "BUSY",
                                    "malformed reply mid-shutdown: {r:?}"
                                );
                                if r.starts_with("ERR 11 ") {
                                    break; // shutting down; reader closes next
                                }
                            }
                        }
                    }
                });
            }
            scope.spawn(move || {
                thread::sleep(Duration::from_millis(5));
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                writeln!(writer, "SHUTDOWN").unwrap();
                let mut resp = String::new();
                reader.read_line(&mut resp).unwrap();
                assert_eq!(resp.trim_end(), "OK violations=0");
            });
        });
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.violations, 0);
    }

    /// One closed-loop binary session: encode requests, decode response
    /// frames, and confirm the replies equal the text protocol's — plus a
    /// malformed frame answered with a text-protocol code and a clean
    /// binary shutdown.
    #[test]
    fn binary_wire_serves_a_session_and_shuts_down_clean() {
        let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let server = Server::bind("127.0.0.1:0", net)
            .unwrap()
            .with_wire(WireMode::Binary);
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run());
        fn roundtrip(stream: &mut TcpStream, cmd: &str) -> String {
            let req = protocol::parse(cmd).unwrap();
            stream.write_all(&frame::encode_request(&req)).unwrap();
            stream.flush().unwrap();
            let body = frame::read_frame(stream).unwrap();
            frame::decode_response(&body).unwrap().to_string()
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        assert!(roundtrip(&mut stream, "ESTABLISH 0 3 100 500 100").starts_with("OK id=0"));
        assert!(roundtrip(&mut stream, "SNAPSHOT").starts_with("OK conns=1"));
        assert_eq!(roundtrip(&mut stream, "RELEASE 0"), "OK freed=500");
        // A malformed frame (unknown opcode) answers with the text
        // protocol's code 2 and does not desynchronize the stream.
        stream
            .write_all(&[1u8, 0, 0, 0, 99]) // len=1, opcode 99
            .unwrap();
        stream.flush().unwrap();
        let body = frame::read_frame(&mut stream).unwrap();
        let resp = frame::decode_response(&body).unwrap();
        assert!(
            matches!(resp, Response::Err { code: 2, .. }),
            "unknown opcode: {resp}"
        );
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN"), "OK violations=0");
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.violations, 0);
        assert_eq!(report.ops, 4, "decode errors never reach the engine");
    }

    #[test]
    fn env_knobs_have_sane_defaults() {
        // (Reads the real environment; CI never sets these for unit tests.)
        assert!(batch_from_env() >= 1);
        assert!(queue_depth_from_env() >= 1);
    }

    #[test]
    fn tiny_queue_yields_busy_under_burst() {
        // Queue depth 1 and a server that cannot drain while the lone
        // event-loop... the loop is fast, so force BUSY deterministically:
        // fill the queue from a connection that never reads replies is not
        // possible in the closed-loop design — instead assert the knob
        // plumbs through and a normal burst still completes without BUSY
        // (the closed loop bounds in-flight commands to one per client).
        let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let server = Server::bind("127.0.0.1:0", net)
            .unwrap()
            .with_queue_depth(1)
            .with_batch(1);
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run());
        let replies = client_session(addr, &["SNAPSHOT", "SNAPSHOT", "SHUTDOWN"]);
        assert!(replies.iter().all(|r| !r.is_empty()));
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.violations, 0);
    }
}
