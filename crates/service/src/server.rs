//! The `drqosd` server: std-only TCP, single-writer event loop.
//!
//! Architecture (one box per thread):
//!
//! ```text
//!  client ──TCP──▶ reader thread ──try_send──▶ bounded queue ─▶ event loop
//!                      ▲   │  (full → BUSY)     (DRQOS_QUEUE_DEPTH)   │
//!                      │   └──────────── reply channel ◀──────────────┘
//!                    accept loop (spawns one reader per connection)
//! ```
//!
//! * Exactly one thread (the event loop) ever touches the [`Engine`] and
//!   its [`drqos_core::network::Network`] — no locks on the hot path.
//! * Reader threads parse nothing; they frame lines and `try_send` them
//!   into a *bounded* queue. A full queue answers `BUSY` immediately
//!   instead of buffering without bound (backpressure).
//! * The event loop drains up to `DRQOS_BATCH` commands per tick, so a
//!   burst pays the channel-wakeup cost once, not per command.
//! * `SHUTDOWN` is graceful: the loop stops accepting, drains every
//!   queued command, runs `check_invariants()`, and only then replies.

use crate::engine::{Engine, Handled};
use crate::error::ProtocolError;
use crate::protocol::Response;
use drqos_core::network::Network;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

pub use drqos_core::env::{DEFAULT_BATCH, DEFAULT_QUEUE_DEPTH};

/// How often blocked I/O re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// `DRQOS_BATCH` (minimum 1; default [`DEFAULT_BATCH`]), read through the
/// [`drqos_core::env`] registry.
pub fn batch_from_env() -> usize {
    drqos_core::env::batch()
}

/// `DRQOS_QUEUE_DEPTH` (minimum 1; default [`DEFAULT_QUEUE_DEPTH`]), read
/// through the [`drqos_core::env`] registry.
pub fn queue_depth_from_env() -> usize {
    drqos_core::env::queue_depth()
}

/// One queued command: the raw line and where to send the response.
struct Command {
    line: String,
    reply: mpsc::Sender<String>,
}

/// What a finished server run reports.
#[derive(Debug)]
pub struct ServiceReport {
    /// Invariant violations found by the shutdown check (clean exit ⇔
    /// empty).
    pub violations: usize,
    /// Final request-metrics dump (the `service_runtime.json` payload).
    pub metrics_json: String,
    /// Total requests handled by the event loop.
    pub ops: u64,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Engine,
    batch: usize,
    queue_depth: usize,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over `net`,
    /// reading `DRQOS_BATCH` / `DRQOS_QUEUE_DEPTH` from the environment.
    ///
    /// # Errors
    ///
    /// Any socket-binding error.
    pub fn bind(addr: &str, net: Network) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine: Engine::new(net),
            batch: batch_from_env(),
            queue_depth: queue_depth_from_env(),
        })
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates `TcpListener::local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Overrides the batch size (tests; production uses `DRQOS_BATCH`).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Overrides the queue depth (tests; production uses
    /// `DRQOS_QUEUE_DEPTH`).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Serves until a `SHUTDOWN` command completes, then returns the final
    /// report. Blocks the calling thread (spawn it for in-process use).
    ///
    /// # Errors
    ///
    /// Socket-configuration errors; per-connection I/O errors only
    /// terminate that connection's reader.
    pub fn run(mut self) -> io::Result<ServiceReport> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::sync_channel::<Command>(self.queue_depth);
        let shutdown = Arc::new(AtomicBool::new(false));
        let busy = self.engine.busy_counter();
        let report = thread::scope(|scope| {
            let accept_shutdown = Arc::clone(&shutdown);
            let listener = &self.listener;
            scope.spawn(move || accept_loop(listener, tx, accept_shutdown, busy));
            event_loop(&mut self.engine, rx, self.batch, &shutdown)
        });
        Ok(report)
    }
}

/// Accepts connections until shutdown, spawning one detached reader thread
/// per connection. Detached is safe: readers own every handle they touch
/// (stream, queue sender, flag clones) and exit within one poll interval
/// of the shutdown flag rising.
fn accept_loop(
    listener: &TcpListener,
    tx: SyncSender<Command>,
    shutdown: Arc<AtomicBool>,
    busy: Arc<AtomicU64>,
) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                let busy = Arc::clone(&busy);
                thread::spawn(move || {
                    let _ = reader_loop(stream, &tx, &shutdown, &busy);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
    // Dropping `tx` here lets the event loop observe disconnection once
    // every reader is gone too.
}

/// Frames lines from one client and shuttles them through the queue.
fn reader_loop(
    stream: TcpStream,
    tx: &SyncSender<Command>,
    shutdown: &AtomicBool,
    busy: &AtomicU64,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // A timeout can fire mid-line (the peer's write may be
                // split across packets); keep whatever `read_line` already
                // appended and resume reading the same line.
                if shutdown.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']).to_string();
        line.clear();
        if shutdown.load(Ordering::Acquire) {
            let resp: Response = ProtocolError::shutting_down().into();
            writeln!(writer, "{resp}")?;
            writer.flush()?;
            continue;
        }
        let cmd = Command {
            line: trimmed,
            reply: reply_tx.clone(),
        };
        match tx.try_send(cmd) {
            Ok(()) => {
                // Closed-loop per connection: wait for this command's
                // response before reading the next line, so responses can
                // never interleave out of order.
                match reply_rx.recv() {
                    Ok(resp) => writeln!(writer, "{resp}")?,
                    Err(_) => {
                        // Event loop gone mid-request (hard stop).
                        let resp: Response = ProtocolError::shutting_down().into();
                        writeln!(writer, "{resp}")?;
                        return Ok(());
                    }
                }
            }
            Err(TrySendError::Full(_)) => {
                busy.fetch_add(1, Ordering::Relaxed);
                writeln!(writer, "{}", Response::Busy)?;
            }
            Err(TrySendError::Disconnected(_)) => {
                let resp: Response = ProtocolError::shutting_down().into();
                writeln!(writer, "{resp}")?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// The single-writer event loop: drains the queue in batches and applies
/// every command to the engine.
fn event_loop(
    engine: &mut Engine,
    rx: Receiver<Command>,
    batch_size: usize,
    shutdown: &AtomicBool,
) -> ServiceReport {
    let mut batch: Vec<Command> = Vec::with_capacity(batch_size);
    let mut shutdown_replies: Vec<mpsc::Sender<String>> = Vec::new();
    'serve: loop {
        match rx.recv() {
            Ok(cmd) => batch.push(cmd),
            Err(_) => break 'serve, // every sender gone without SHUTDOWN
        }
        while batch.len() < batch_size {
            match rx.try_recv() {
                Ok(cmd) => batch.push(cmd),
                Err(_) => break,
            }
        }
        for cmd in batch.drain(..) {
            match engine.handle_server_line(&cmd.line) {
                Handled::Reply(resp) => {
                    // A send error means the reader died; the state change
                    // already happened, so just move on.
                    let _ = cmd.reply.send(resp.to_string());
                }
                Handled::ShutdownRequested => shutdown_replies.push(cmd.reply),
            }
        }
        if !shutdown_replies.is_empty() {
            // Graceful drain: stop accepting, then serve everything that
            // made it into the queue before the flag rose.
            shutdown.store(true, Ordering::Release);
            while let Ok(cmd) = rx.try_recv() {
                match engine.handle_server_line(&cmd.line) {
                    Handled::Reply(resp) => {
                        let _ = cmd.reply.send(resp.to_string());
                    }
                    Handled::ShutdownRequested => shutdown_replies.push(cmd.reply),
                }
            }
            break 'serve;
        }
    }
    shutdown.store(true, Ordering::Release);
    let final_resp = engine.finish_shutdown();
    let violations = match &final_resp {
        Response::Ok(_) => 0,
        _ => engine.network().check_invariants().len(),
    };
    for reply in shutdown_replies {
        let _ = reply.send(final_resp.to_string());
    }
    ServiceReport {
        violations,
        metrics_json: engine.metrics().to_json("drqosd"),
        ops: engine.metrics().total_ops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::network::NetworkConfig;
    use drqos_topology::regular;

    fn client_session(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            replies.push(resp.trim_end().to_string());
        }
        replies
    }

    fn test_server() -> (SocketAddr, thread::JoinHandle<io::Result<ServiceReport>>) {
        let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let server = Server::bind("127.0.0.1:0", net).expect("bind ephemeral");
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run());
        (addr, handle)
    }

    #[test]
    fn serves_a_session_and_shuts_down_clean() {
        let (addr, handle) = test_server();
        let replies = client_session(
            addr,
            &[
                "ESTABLISH 0 3 100 500 100",
                "SNAPSHOT",
                "RELEASE 0",
                "BOGUS",
                "SHUTDOWN",
            ],
        );
        assert!(replies[0].starts_with("OK id=0"), "{}", replies[0]);
        assert!(replies[1].starts_with("OK conns=1"), "{}", replies[1]);
        assert_eq!(replies[2], "OK freed=500");
        assert!(replies[3].starts_with("ERR 2 "), "{}", replies[3]);
        assert_eq!(replies[4], "OK violations=0");
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.violations, 0);
        assert_eq!(report.ops, 5);
        assert!(report.metrics_json.contains("\"admitted\":1"));
    }

    #[test]
    fn env_knobs_have_sane_defaults() {
        // (Reads the real environment; CI never sets these for unit tests.)
        assert!(batch_from_env() >= 1);
        assert!(queue_depth_from_env() >= 1);
    }

    #[test]
    fn tiny_queue_yields_busy_under_burst() {
        // Queue depth 1 and a server that cannot drain while the lone
        // event-loop... the loop is fast, so force BUSY deterministically:
        // fill the queue from a connection that never reads replies is not
        // possible in the closed-loop design — instead assert the knob
        // plumbs through and a normal burst still completes without BUSY
        // (the closed loop bounds in-flight commands to one per client).
        let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let server = Server::bind("127.0.0.1:0", net)
            .unwrap()
            .with_queue_depth(1)
            .with_batch(1);
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run());
        let replies = client_session(addr, &["SNAPSHOT", "SNAPSHOT", "SHUTDOWN"]);
        assert!(replies.iter().all(|r| !r.is_empty()));
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.violations, 0);
    }
}
