//! TCP daemons for the cluster federation: the coordinator process that
//! owns the authoritative [`Network`] and two-phase ledger, and member
//! processes that serve the ordinary client text protocol backed by a
//! full replica plus the inter-daemon protocol of [`drqos_cluster::proto`].
//!
//! The split mirrors [`crate::server`] exactly one layer up: where the
//! monolithic daemon wraps one [`crate::engine::Engine`] in sockets and
//! timeouts, `drqos-clusterd` wraps one [`Coordinator`] plus N
//! [`Member`] replicas. All admission logic stays in the clock-free
//! `drqos-cluster` crate; this module adds only framing, polling
//! accept loops, and per-connection threads.
//!
//! ## Commit protocol (member side)
//!
//! A client `ESTABLISH` on a member daemon becomes:
//!
//! 1. catch up the replica (`SYNC` until level with the coordinator),
//! 2. plan locally to trace the admission **footprint** digests,
//! 3. `PREPARE` the footprint → `VERDICT {ticket, fresh}`,
//! 4. `COMMIT {ticket, req}` → `DONE {op_seq}` — the TCP mode ships no
//!    plan, so the coordinator re-plans serially under the reservation
//!    (`fresh` short-circuits nothing here; it is the ledger that makes
//!    the revalidation sound),
//! 5. `SYNC` past `op_seq` and render the reply from the replica's *own*
//!    replay outcome at `op_seq`.
//!
//! Step 5 is why no result ever rides the wire: replay is deterministic
//! ([`drqos_cluster::coordinator::apply_committed`] is the single shared
//! transition function), so the outcome the member replays is the
//! outcome the coordinator committed. `fuzz --diff-cluster` proves the
//! equivalence against the monolithic engine.
//!
//! ## Churn
//!
//! A member daemon that loses its coordinator link answers every
//! forwarding command with wire code 504 (prepare timeout) but keeps
//! serving `SNAPSHOT`-free local commands and its own `SHUTDOWN`. A
//! member *connection* that reaches EOF at the coordinator without a
//! graceful `LEAVE` is a **crash**: the coordinator aborts its pending
//! prepares and rebalances the partition onto the survivors.

use crate::error::ProtocolError;
use crate::protocol::{self, Request, Response};
use drqos_cluster::coordinator::{ApplyOutcome, Coordinator, MemberOp};
use drqos_cluster::member::Member;
use drqos_cluster::proto::{
    decode_cluster_msg, decode_coord_msg, encode_cluster_msg, encode_coord_msg, ClusterMsg,
    CoordMsg, WireRequest, RECORDS_PER_SYNC,
};
use drqos_core::channel::ConnectionId;
use drqos_core::env::RebalancePolicy;
use drqos_core::error::ClusterError;
use drqos_core::framing::{self, Fill, FrameReader};
use drqos_core::network::{EstablishRequest, Network};
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_topology::{LinkId, NodeId};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

/// How often blocked reads and accept loops recheck their stop flags —
/// the same cadence as the monolithic server.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Poison-shrugging lock: a panicked handler thread must not wedge the
/// daemon, and the guarded state is always left consistent between
/// operations (every mutation happens under one lock acquisition).
fn lock_shrug<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn link_down() -> io::Error {
    io::Error::new(io::ErrorKind::NotConnected, "coordinator link is down")
}

fn bad_reply(msg: &CoordMsg) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected coordinator reply {msg:?}"),
    )
}

/// Renders a coordinator-refused operation as a wire-coded `ERR` using
/// the stable [`drqos_core::wire`] description for the message.
fn cluster_err(code: u16) -> Response {
    let message = drqos_core::wire::describe(code)
        .unwrap_or("cluster error")
        .to_string();
    Response::Err { code, message }
}

fn err_of(e: ClusterError) -> CoordMsg {
    CoordMsg::Err {
        code: e.wire_code(),
    }
}

// ---------------------------------------------------------------------------
// Coordinator daemon
// ---------------------------------------------------------------------------

/// Shared coordinator state: the authority plus which roster ids are
/// currently claimed by a *connected* daemon (alive-but-unclaimed ids are
/// genesis or vacated slots a joiner can take without a rebalance).
struct CoordShared {
    coord: Coordinator,
    claimed: Vec<bool>,
}

/// End-of-run summary returned by [`ClusterCoordinator::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordinatorReport {
    /// Invariant violations on the authoritative network at stop.
    pub violations: usize,
    /// Final oplog sequence number.
    pub seq: u64,
    /// Commits that were re-planned because their footprint went stale.
    pub stale_replans: u64,
    /// Prepares aborted by member crashes or explicit `ABORT`.
    pub aborted_prepares: u64,
}

/// The coordinator daemon: accepts inter-daemon connections and serves
/// the [`ClusterMsg`] protocol over length-prefixed binary frames.
pub struct ClusterCoordinator {
    listener: TcpListener,
    shared: Arc<Mutex<CoordShared>>,
    stop: Arc<AtomicBool>,
}

impl ClusterCoordinator {
    /// Binds the coordinator on `addr` with a genesis roster of
    /// `members` ids (none yet claimed by a connection).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(
        addr: &str,
        net: Network,
        members: usize,
        seed: u64,
        policy: RebalancePolicy,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let roster = members.max(1);
        Ok(Self {
            listener,
            shared: Arc::new(Mutex::new(CoordShared {
                coord: Coordinator::new(net, roster, seed, policy),
                claimed: vec![false; roster],
            })),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0 in tests).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves inter-daemon connections until a `STOP` arrives, then
    /// checks the authority's invariants and reports.
    ///
    /// # Errors
    ///
    /// Propagates listener errors.
    pub fn run(self) -> io::Result<CoordinatorReport> {
        self.listener.set_nonblocking(true)?;
        while !self.stop.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    let stop = Arc::clone(&self.stop);
                    thread::spawn(move || {
                        let _ = serve_cluster_peer(stream, &shared, &stop);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
                Err(_) => thread::sleep(POLL_INTERVAL),
            }
        }
        // One poll interval for in-flight handlers to finish their reply.
        thread::sleep(POLL_INTERVAL);
        let shared = lock_shrug(&self.shared);
        Ok(CoordinatorReport {
            violations: shared.coord.check_invariants().len(),
            seq: shared.coord.seq(),
            stale_replans: shared.coord.stale_replans(),
            aborted_prepares: shared.coord.aborted_prepares(),
        })
    }
}

/// Claims a member id for a joining connection: an alive-but-unclaimed
/// roster slot if one exists (genesis boot, or a vacated slot — costs no
/// rebalance), otherwise a fresh `JOIN` that repartitions.
fn claim_member(s: &mut CoordShared) -> Result<u64, ClusterError> {
    let unclaimed = s
        .coord
        .alive()
        .iter()
        .enumerate()
        .find(|&(i, &alive)| alive && !s.claimed.get(i).copied().unwrap_or(false))
        .map(|(i, _)| i as u64);
    let id = match unclaimed {
        Some(id) => id,
        None => {
            let id = s.coord.next_member_id();
            s.coord.join(id)?;
            id
        }
    };
    let idx = usize::try_from(id).unwrap_or(usize::MAX);
    if s.claimed.len() <= idx {
        s.claimed.resize(idx.saturating_add(1), false);
    }
    if let Some(slot) = s.claimed.get_mut(idx) {
        *slot = true;
    }
    Ok(id)
}

/// The greppable one-line coordinator status served to `STATUS` clients
/// (`drqos-clusterd status` and the CI smoke job parse it).
fn status_line(s: &CoordShared) -> String {
    let roster: String = s
        .coord
        .alive()
        .iter()
        .map(|&a| if a { '1' } else { '0' })
        .collect();
    format!(
        "members={} alive={} seq={} pending={} stale_replans={} aborted_prepares={} roster={}",
        s.coord.alive().len(),
        s.coord.alive_count(),
        s.coord.seq(),
        s.coord.pending_prepares(),
        s.coord.stale_replans(),
        s.coord.aborted_prepares(),
        roster
    )
}

fn handle_cluster_msg(s: &mut CoordShared, member: &mut Option<u64>, msg: ClusterMsg) -> CoordMsg {
    match msg {
        ClusterMsg::Join => {
            if let Some(m) = *member {
                // One daemon, one id: a second JOIN on the same link is a
                // duplicate of whatever this link already holds.
                return err_of(ClusterError::DuplicateMember(m));
            }
            match claim_member(s) {
                Ok(id) => {
                    *member = Some(id);
                    CoordMsg::Welcome {
                        member: id,
                        seq: s.coord.seq(),
                    }
                }
                Err(e) => err_of(e),
            }
        }
        ClusterMsg::Prepare { footprint } => {
            let Some(m) = *member else {
                return err_of(ClusterError::UnknownMember(u64::MAX));
            };
            let fp: Vec<(LinkId, u64)> = footprint
                .iter()
                .filter_map(|&(l, d)| usize::try_from(l).ok().map(|l| (LinkId(l), d)))
                .collect();
            match s.coord.prepare(m, &fp) {
                Ok(p) => CoordMsg::Verdict {
                    ticket: p.ticket,
                    fresh: p.fresh,
                },
                Err(e) => err_of(e),
            }
        }
        ClusterMsg::Commit { ticket, req } => {
            if member.is_none() {
                return err_of(ClusterError::UnknownMember(u64::MAX));
            }
            let Ok(req) = req.to_request() else {
                // An unbuildable QoS can only reach COMMIT through a peer
                // that skipped its local validation; treat as stale.
                return err_of(ClusterError::StalePrepare(ticket));
            };
            // The TCP daemons ship no plan: a commit without one re-plans
            // serially under the footprint reservation.
            let mut fill = None;
            match s.coord.commit_prepared(ticket, None, &req, &mut fill) {
                Ok(_result) => {
                    s.coord.flush(fill);
                    let seq = s.coord.seq();
                    CoordMsg::Done {
                        op_seq: seq.saturating_sub(1),
                        seq,
                    }
                }
                Err(e) => err_of(e),
            }
        }
        ClusterMsg::Abort { ticket } => match s.coord.abort_prepare(ticket) {
            Ok(()) => CoordMsg::Ok,
            Err(e) => err_of(e),
        },
        ClusterMsg::Op { op } => {
            let Some(m) = *member else {
                return err_of(ClusterError::UnknownMember(u64::MAX));
            };
            match s.coord.forward(m, op) {
                Ok(_outcome) => {
                    let seq = s.coord.seq();
                    CoordMsg::Done {
                        op_seq: seq.saturating_sub(1),
                        seq,
                    }
                }
                Err(e) => err_of(e),
            }
        }
        ClusterMsg::Sync { applied } => match s.coord.records_since(applied) {
            Ok(records) => {
                let take = records.len().min(RECORDS_PER_SYNC);
                CoordMsg::Records {
                    seq: s.coord.seq(),
                    records: records.get(..take).unwrap_or_default().to_vec(),
                }
            }
            Err(e) => err_of(e),
        },
        ClusterMsg::Leave => {
            let Some(m) = *member else {
                return err_of(ClusterError::UnknownMember(u64::MAX));
            };
            match s.coord.leave(m) {
                Ok(()) => {
                    if let Some(slot) = s.claimed.get_mut(usize::try_from(m).unwrap_or(usize::MAX))
                    {
                        *slot = false;
                    }
                    CoordMsg::Ok
                }
                Err(e) => err_of(e),
            }
        }
        ClusterMsg::Status => CoordMsg::State {
            text: status_line(s),
        },
        ClusterMsg::Stop => CoordMsg::Ok,
    }
}

/// Serves one inter-daemon connection. EOF (or any framing/protocol
/// error) from a connection that joined and did not `LEAVE` is a member
/// **crash**: pending prepares abort and the partition rebalances.
fn serve_cluster_peer(
    stream: TcpStream,
    shared: &Mutex<CoordShared>,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = stream;
    let mut framer = FrameReader::new();
    let mut member: Option<u64> = None;
    loop {
        let body = match framer.next_frame() {
            Ok(Some(body)) => body,
            Ok(None) => match framer.fill(&mut reader) {
                Ok(Fill::Data) => continue,
                Ok(Fill::Eof) => break,
                Ok(Fill::Idle) => {
                    if stop.load(Ordering::Acquire) {
                        // Coordinator is going away; the peer's EOF is not
                        // a crash any more.
                        member = None;
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            },
            Err(_) => break,
        };
        let Ok(msg) = decode_cluster_msg(&body) else {
            break;
        };
        let leaving = matches!(msg, ClusterMsg::Leave);
        let stopping = matches!(msg, ClusterMsg::Stop);
        let reply = {
            let mut s = lock_shrug(shared);
            handle_cluster_msg(&mut s, &mut member, msg)
        };
        let clean = !matches!(reply, CoordMsg::Err { .. });
        writer.write_all(&framing::finish(encode_coord_msg(&reply)))?;
        writer.flush()?;
        if leaving && clean {
            member = None;
            break;
        }
        if stopping {
            member = None;
            stop.store(true, Ordering::Release);
            break;
        }
    }
    if let Some(m) = member {
        let mut s = lock_shrug(shared);
        // LastMember: the roster cannot empty — the id stays alive on the
        // books but its slot is free for the next joiner.
        let _ = s.coord.crash(m);
        if let Some(slot) = s.claimed.get_mut(usize::try_from(m).unwrap_or(usize::MAX)) {
            *slot = false;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Member daemon
// ---------------------------------------------------------------------------

/// One framed request/reply stream to the coordinator, with the prepare
/// timeout applied to both directions.
struct CoordLink {
    stream: TcpStream,
}

impl CoordLink {
    fn connect(addr: &str, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// One framed request/reply exchange. Any error — including a read
    /// timeout — means the stream can no longer be resynchronized.
    fn roundtrip(&mut self, msg: &ClusterMsg) -> io::Result<CoordMsg> {
        self.stream
            .write_all(&framing::finish(encode_cluster_msg(msg)))?;
        self.stream.flush()?;
        let body = framing::read_frame(&mut self.stream)?;
        decode_coord_msg(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn prepare_timeout() -> Duration {
    Duration::from_millis(drqos_core::env::cluster_prepare_timeout_ms().max(1))
}

/// Member daemon state behind one lock: the coordinator link (None once
/// it has failed), the full replica, and the client-visible counters.
struct MemberState {
    link: Option<CoordLink>,
    replica: Member,
    ops: u64,
    errors: u64,
}

impl MemberState {
    /// Pulls records until the replica has applied `target`, capturing
    /// the replayed outcome at sequence `target - 1` (this member's own
    /// operation, whose rendering answers the waiting client).
    fn sync_to(&mut self, target: u64) -> io::Result<Option<ApplyOutcome>> {
        let mut wanted = None;
        while self.replica.applied() < target {
            let applied = self.replica.applied();
            let link = self.link.as_mut().ok_or_else(link_down)?;
            let reply = link.roundtrip(&ClusterMsg::Sync { applied })?;
            let CoordMsg::Records { records, .. } = reply else {
                return Err(bad_reply(&reply));
            };
            if records.is_empty() {
                break;
            }
            let outcomes = self.replica.apply(&records);
            let offset = usize::try_from(target.saturating_sub(1).saturating_sub(applied))
                .unwrap_or(usize::MAX);
            if let Some(o) = outcomes.get(offset) {
                wanted = Some(o.clone());
            }
        }
        Ok(wanted)
    }

    /// Replays until the replica is level with the coordinator.
    fn catch_up(&mut self) -> io::Result<()> {
        loop {
            let applied = self.replica.applied();
            let link = self.link.as_mut().ok_or_else(link_down)?;
            let reply = link.roundtrip(&ClusterMsg::Sync { applied })?;
            let CoordMsg::Records { seq, records } = reply else {
                return Err(bad_reply(&reply));
            };
            self.replica.apply(&records);
            if self.replica.applied() >= seq {
                return Ok(());
            }
        }
    }

    /// A failed coordinator exchange poisons the link: the framed stream
    /// cannot be resynchronized, so every later forwarding command
    /// answers 504 until the daemon is restarted.
    fn settle(&mut self, attempt: io::Result<Response>) -> Response {
        match attempt {
            Ok(resp) => resp,
            Err(_) => {
                self.link = None;
                Response::Err {
                    code: 504,
                    message: ClusterError::PrepareTimeout(0).to_string(),
                }
            }
        }
    }

    fn establish(&mut self, src: usize, dst: usize, bmin: u64, bmax: u64, delta: u64) -> Response {
        // QoS validation is local, exactly like the engine: a malformed
        // range never reaches the coordinator.
        let qos = match ElasticQos::new(
            Bandwidth::kbps(bmin),
            Bandwidth::kbps(bmax),
            Bandwidth::kbps(delta),
            1.0,
        ) {
            Ok(qos) => qos,
            Err(e) => {
                return Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                }
            }
        };
        let req = EstablishRequest {
            src: NodeId(src),
            dst: NodeId(dst),
            qos,
        };
        let attempt = self.two_phase_establish(&req);
        self.settle(attempt)
    }

    fn two_phase_establish(&mut self, req: &EstablishRequest) -> io::Result<Response> {
        self.catch_up()?;
        // Plan locally for the footprint. The plan itself is *not*
        // shipped (the TCP mode re-plans serially under the reservation),
        // and even a local rejection goes through prepare/commit so the
        // oplog records every attempt exactly like the monolithic engine.
        let (_planned, footprint) = self.replica.plan(req);
        let wire_fp: Vec<(u64, u64)> = footprint
            .iter()
            .map(|&(l, d)| (l.index() as u64, d))
            .collect();
        let link = self.link.as_mut().ok_or_else(link_down)?;
        let ticket = match link.roundtrip(&ClusterMsg::Prepare { footprint: wire_fp })? {
            CoordMsg::Verdict { ticket, .. } => ticket,
            CoordMsg::Err { code } => return Ok(cluster_err(code)),
            other => return Err(bad_reply(&other)),
        };
        let done = link.roundtrip(&ClusterMsg::Commit {
            ticket,
            req: WireRequest::from_request(req),
        })?;
        let op_seq = match done {
            CoordMsg::Done { op_seq, .. } => op_seq,
            CoordMsg::Err { code } => return Ok(cluster_err(code)),
            other => return Err(bad_reply(&other)),
        };
        match self.sync_to(op_seq.saturating_add(1))? {
            Some(ApplyOutcome::Establish(Ok(id))) => Ok(self.render_admitted(id)),
            Some(ApplyOutcome::Establish(Err(e))) => Ok(Response::Err {
                code: e.wire_code(),
                message: e.to_string(),
            }),
            _ => Ok(
                ProtocolError::internal("replayed outcome does not match the committed op").into(),
            ),
        }
    }

    /// Renders the `OK` reply for an admitted connection id, byte-equal
    /// to the monolithic engine's rendering.
    fn render_admitted(&self, id: ConnectionId) -> Response {
        match self.replica.net().connection(id) {
            Some(c) => Response::Ok(format!(
                "id={} bw={} hops={} backups={}",
                id.0,
                c.bandwidth().as_kbps(),
                c.primary().hop_count(),
                c.backup_count()
            )),
            None => ProtocolError::internal("established connection not readable back").into(),
        }
    }

    fn forward(&mut self, op: MemberOp) -> Response {
        let attempt = (|| -> io::Result<Response> {
            let link = self.link.as_mut().ok_or_else(link_down)?;
            let op_seq = match link.roundtrip(&ClusterMsg::Op { op })? {
                CoordMsg::Done { op_seq, .. } => op_seq,
                CoordMsg::Err { code } => return Ok(cluster_err(code)),
                other => return Err(bad_reply(&other)),
            };
            let outcome = self.sync_to(op_seq.saturating_add(1))?;
            Ok(render_outcome(outcome))
        })();
        self.settle(attempt)
    }

    fn snapshot(&mut self) -> Response {
        let attempt = (|| -> io::Result<Response> {
            self.catch_up()?;
            Ok(Response::Ok(snapshot_payload(self.replica.net())))
        })();
        self.settle(attempt)
    }

    /// Member-local counters; deliberately simpler than the engine's
    /// `STATS` (no latency percentiles — the replica does no admission
    /// work of its own to time).
    fn stats(&self) -> Response {
        Response::Ok(format!(
            "ops={} errors={} member={} applied={} linked={}",
            self.ops,
            self.errors,
            self.replica.id(),
            self.replica.applied(),
            u8::from(self.link.is_some())
        ))
    }

    /// Graceful departure: `LEAVE` (tolerating a dead coordinator or a
    /// last-member refusal — the roster cannot empty), then a *local*
    /// invariant check over the replica, mirroring the engine's
    /// `SHUTDOWN` contract.
    fn shutdown(&mut self) -> Response {
        if let Some(link) = self.link.as_mut() {
            let _ = link.roundtrip(&ClusterMsg::Leave);
        }
        self.link = None;
        let violations = self.replica.net().check_invariants();
        match violations.first() {
            None => Response::Ok("violations=0".to_string()),
            Some(first) => Response::Err {
                code: first.wire_code(),
                message: format!("shutdown with {} invariant violations", violations.len()),
            },
        }
    }

    fn dispatch(&mut self, req: &Request) -> Response {
        match *req {
            Request::Establish {
                src,
                dst,
                bmin,
                bmax,
                delta,
            } => self.establish(src, dst, bmin, bmax, delta),
            Request::Release { id } => self.forward(MemberOp::Release {
                id: ConnectionId(id),
            }),
            Request::FailLink { link } => self.forward(MemberOp::FailLink { link: LinkId(link) }),
            Request::RepairLink { link } => {
                self.forward(MemberOp::RepairLink { link: LinkId(link) })
            }
            Request::FailNode { node } => self.forward(MemberOp::FailNode { node: NodeId(node) }),
            Request::FailSrlg { group } => self.forward(MemberOp::FailSrlg { group }),
            Request::RepairSrlg { group } => self.forward(MemberOp::RepairSrlg { group }),
            Request::Snapshot => self.snapshot(),
            Request::Stats => self.stats(),
            Request::Shutdown => self.shutdown(),
        }
    }

    /// Parses and serves one client line; the flag is true when the line
    /// was a `SHUTDOWN` and the daemon should stop accepting.
    fn handle_line(&mut self, line: &str) -> (Response, bool) {
        self.ops = self.ops.saturating_add(1);
        let (resp, stop) = match protocol::parse(line) {
            Ok(Request::Shutdown) => (self.shutdown(), true),
            Ok(req) => (self.dispatch(&req), false),
            Err(e) => (e.into(), false),
        };
        if resp.is_err() {
            self.errors = self.errors.saturating_add(1);
        }
        (resp, stop)
    }
}

/// Renders a replayed non-establish outcome byte-equal to the engine.
fn render_outcome(outcome: Option<ApplyOutcome>) -> Response {
    match outcome {
        Some(ApplyOutcome::Release(Ok(Some(kbps)))) => Response::Ok(format!("freed={kbps}")),
        Some(ApplyOutcome::Release(Ok(None))) => {
            ProtocolError::internal("released connection had no readable bandwidth").into()
        }
        Some(ApplyOutcome::Release(Err(e))) => Response::Err {
            code: e.wire_code(),
            message: e.to_string(),
        },
        Some(ApplyOutcome::FailLink(Ok(report))) => Response::Ok(format!(
            "activated={} dropped={} lost_backup={} retreated={}",
            report.activated.len(),
            report.dropped.len(),
            report.lost_backup.len(),
            report.retreated.len()
        )),
        Some(ApplyOutcome::FailLink(Err(e))) => Response::Err {
            code: e.wire_code(),
            message: e.to_string(),
        },
        Some(ApplyOutcome::RepairLink(Ok(regained))) => {
            Response::Ok(format!("regained={}", regained.len()))
        }
        Some(ApplyOutcome::RepairLink(Err(e))) => Response::Err {
            code: e.wire_code(),
            message: e.to_string(),
        },
        Some(ApplyOutcome::FailNode(Ok(reports))) => {
            let activated: usize = reports.iter().map(|r| r.activated.len()).sum();
            let dropped: usize = reports.iter().map(|r| r.dropped.len()).sum();
            Response::Ok(format!(
                "links={} activated={} dropped={}",
                reports.len(),
                activated,
                dropped
            ))
        }
        Some(ApplyOutcome::FailNode(Err(e))) => Response::Err {
            code: e.wire_code(),
            message: e.to_string(),
        },
        Some(ApplyOutcome::FailSrlg(Ok(reports))) => {
            let activated: usize = reports.iter().map(|r| r.activated.len()).sum();
            let dropped: usize = reports.iter().map(|r| r.dropped.len()).sum();
            Response::Ok(format!(
                "links={} activated={} dropped={}",
                reports.len(),
                activated,
                dropped
            ))
        }
        Some(ApplyOutcome::FailSrlg(Err(e))) => Response::Err {
            code: e.wire_code(),
            message: e.to_string(),
        },
        Some(ApplyOutcome::RepairSrlg(Ok(regained))) => {
            Response::Ok(format!("regained={}", regained.len()))
        }
        Some(ApplyOutcome::RepairSrlg(Err(e))) => Response::Err {
            code: e.wire_code(),
            message: e.to_string(),
        },
        _ => ProtocolError::internal("replayed outcome does not match the committed op").into(),
    }
}

/// The deterministic `SNAPSHOT` payload over a replica network,
/// byte-equal to [`crate::engine::Engine`]'s.
fn snapshot_payload(net: &Network) -> String {
    format!(
        "conns={} bw={} dropped={} epoch={} up={} nodes={} links={}",
        net.len(),
        net.total_primary_bandwidth().as_kbps(),
        net.dropped_total(),
        net.topology_epoch(),
        net.up_links().count(),
        net.graph().node_count(),
        net.graph().link_count()
    )
}

/// End-of-run summary returned by [`ClusterMember::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberReport {
    /// The id the coordinator assigned at join.
    pub member: u64,
    /// Client lines served.
    pub ops: u64,
    /// Invariant violations on the replica at shutdown.
    pub violations: usize,
}

/// A member daemon: joins the federation, replicates the oplog, and
/// serves the ordinary client text protocol on its own port.
pub struct ClusterMember {
    listener: TcpListener,
    state: Arc<Mutex<MemberState>>,
    member_id: u64,
}

impl ClusterMember {
    /// Connects to the coordinator, joins, catches the replica up to the
    /// coordinator's sequence, and binds the client listener.
    ///
    /// `genesis` must be the same network the coordinator was booted
    /// with (same topology flags): replicas replay the oplog from the
    /// shared genesis, they never transfer state.
    ///
    /// # Errors
    ///
    /// Socket errors, a refused join, or a protocol violation.
    pub fn bind(addr: &str, genesis: Network, coordinator: &str) -> io::Result<Self> {
        let mut link = CoordLink::connect(coordinator, prepare_timeout())?;
        let (member_id, _seq) = match link.roundtrip(&ClusterMsg::Join)? {
            CoordMsg::Welcome { member, seq } => (member, seq),
            CoordMsg::Err { code } => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("coordinator refused join (wire code {code})"),
                ))
            }
            other => return Err(bad_reply(&other)),
        };
        let mut state = MemberState {
            link: Some(link),
            replica: Member::new(member_id, genesis),
            ops: 0,
            errors: 0,
        };
        state.catch_up()?;
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(Mutex::new(state)),
            member_id,
        })
    }

    /// The assigned member id.
    pub fn member_id(&self) -> u64 {
        self.member_id
    }

    /// The bound client address (useful with port 0 in tests).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves client connections until a `SHUTDOWN` line arrives.
    ///
    /// # Errors
    ///
    /// Propagates listener errors.
    pub fn run(self) -> io::Result<MemberReport> {
        self.listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        while !shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    let flag = Arc::clone(&shutdown);
                    thread::spawn(move || {
                        let _ = serve_member_client(stream, &state, &flag);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
                Err(_) => thread::sleep(POLL_INTERVAL),
            }
        }
        thread::sleep(POLL_INTERVAL);
        let state = lock_shrug(&self.state);
        Ok(MemberReport {
            member: self.member_id,
            ops: state.ops,
            violations: state.replica.net().check_invariants().len(),
        })
    }
}

/// Serves one client connection with the text line protocol, polling the
/// shutdown flag between reads exactly like [`crate::server`].
fn serve_member_client(
    stream: TcpStream,
    state: &Mutex<MemberState>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::Acquire) && line.is_empty() {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']).to_string();
        line.clear();
        if shutdown.load(Ordering::Acquire) {
            let resp: Response = ProtocolError::shutting_down().into();
            writeln!(writer, "{resp}")?;
            writer.flush()?;
            return Ok(());
        }
        let (resp, stop) = {
            let mut s = lock_shrug(state);
            s.handle_line(&trimmed)
        };
        writeln!(writer, "{resp}")?;
        writer.flush()?;
        if stop {
            shutdown.store(true, Ordering::Release);
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------------
// Control clients (status / stop)
// ---------------------------------------------------------------------------

/// Fetches the coordinator's one-line status.
///
/// # Errors
///
/// Socket errors or a protocol violation.
pub fn fetch_status(coordinator: &str) -> io::Result<String> {
    let mut link = CoordLink::connect(coordinator, prepare_timeout())?;
    match link.roundtrip(&ClusterMsg::Status)? {
        CoordMsg::State { text } => Ok(text),
        other => Err(bad_reply(&other)),
    }
}

/// Asks the coordinator to stop serving and report.
///
/// # Errors
///
/// Socket errors or a protocol violation.
pub fn request_stop(coordinator: &str) -> io::Result<()> {
    let mut link = CoordLink::connect(coordinator, prepare_timeout())?;
    match link.roundtrip(&ClusterMsg::Stop)? {
        CoordMsg::Ok => Ok(()),
        other => Err(bad_reply(&other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use drqos_core::network::NetworkConfig;
    use drqos_topology::regular::ring;
    use std::io::BufRead;
    use std::thread::JoinHandle;

    fn genesis() -> Network {
        Network::new(ring(6).unwrap(), NetworkConfig::default())
    }

    /// Drives one text session against `addr`, one reply per line.
    fn session(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for l in lines {
            writeln!(writer, "{l}").unwrap();
            writer.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            replies.push(reply.trim_end().to_string());
        }
        replies
    }

    struct Booted {
        coordinator: SocketAddr,
        members: Vec<SocketAddr>,
        coord_handle: JoinHandle<io::Result<CoordinatorReport>>,
        member_handles: Vec<JoinHandle<io::Result<MemberReport>>>,
    }

    fn boot(members: usize) -> Booted {
        let coord =
            ClusterCoordinator::bind("127.0.0.1:0", genesis(), members, 7, RebalancePolicy::Bfs)
                .unwrap();
        let coordinator = coord.local_addr().unwrap();
        let coord_handle = thread::spawn(move || coord.run());
        let mut addrs = Vec::new();
        let mut member_handles = Vec::new();
        for _ in 0..members {
            let m =
                ClusterMember::bind("127.0.0.1:0", genesis(), &coordinator.to_string()).unwrap();
            addrs.push(m.local_addr().unwrap());
            member_handles.push(thread::spawn(move || m.run()));
        }
        Booted {
            coordinator,
            members: addrs,
            coord_handle,
            member_handles,
        }
    }

    #[test]
    fn a_federated_session_matches_the_monolithic_engine() {
        let booted = boot(2);
        let &[a, b] = &booted.members[..] else {
            panic!("expected two members");
        };
        // Alternate commands across both member daemons; mirror every one
        // on a monolithic engine and demand byte-equal replies.
        let script: &[(SocketAddr, &str)] = &[
            (a, "ESTABLISH 0 3 64 256 64"),
            (b, "ESTABLISH 1 4 64 256 64"),
            (b, "SNAPSHOT"),
            (a, "FAIL-LINK 0"),
            (b, "SNAPSHOT"),
            (a, "REPAIR-LINK 0"),
            (b, "RELEASE 0"),
            (a, "RELEASE 99"),
            (b, "FAIL-NODE 2"),
            (a, "SNAPSHOT"),
            (a, "ESTABLISH 0 0 64 256 64"),
            (b, "ESTABLISH 0 3 0 0 0"),
        ];
        let mut oracle = Engine::with_shards(genesis(), 1);
        for &(addr, line) in script {
            let got = session(addr, &[line]).remove(0);
            let want = oracle.handle_line(line).to_string();
            assert_eq!(got, want, "divergence on {line:?}");
        }
        // Both members shut down cleanly; the second is the last live
        // member (LEAVE refused) but its local invariants still hold.
        for &addr in &[a, b] {
            let replies = session(addr, &["SHUTDOWN"]);
            assert_eq!(replies, vec!["OK violations=0".to_string()]);
        }
        request_stop(&booted.coordinator.to_string()).unwrap();
        let report = booted.coord_handle.join().unwrap().unwrap();
        assert_eq!(report.violations, 0);
        // Every scripted op except SNAPSHOT lands in the oplog (establishes
        // including rejections, releases including the unknown id, fails,
        // repairs).
        assert_eq!(report.seq, 9);
        for h in booted.member_handles {
            let r = h.join().unwrap().unwrap();
            assert_eq!(r.violations, 0);
        }
    }

    #[test]
    fn a_dropped_peer_is_a_crash_and_its_slot_is_reclaimable() {
        let coord =
            ClusterCoordinator::bind("127.0.0.1:0", genesis(), 2, 7, RebalancePolicy::Bfs).unwrap();
        let coordinator = coord.local_addr().unwrap().to_string();
        let coord_handle = thread::spawn(move || coord.run());

        let timeout = Duration::from_millis(2000);
        let mut link0 = CoordLink::connect(&coordinator, timeout).unwrap();
        let CoordMsg::Welcome { member: 0, .. } = link0.roundtrip(&ClusterMsg::Join).unwrap()
        else {
            panic!("first joiner should claim id 0");
        };
        let link1 = {
            let mut l = CoordLink::connect(&coordinator, timeout).unwrap();
            let CoordMsg::Welcome { member: 1, .. } = l.roundtrip(&ClusterMsg::Join).unwrap()
            else {
                panic!("second joiner should claim id 1");
            };
            l
        };

        // EOF without LEAVE = crash: the coordinator rebalances onto the
        // survivor and frees the slot.
        drop(link1);
        let mut status = String::new();
        for _ in 0..100 {
            status = fetch_status(&coordinator).unwrap();
            if status.contains("alive=1") {
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        assert!(status.contains("alive=1"), "status was {status}");
        assert!(status.contains("roster=10"), "status was {status}");

        // The survivor still commits two-phase establishes.
        let CoordMsg::Verdict {
            ticket,
            fresh: true,
        } = link0
            .roundtrip(&ClusterMsg::Prepare { footprint: vec![] })
            .unwrap()
        else {
            panic!("prepare should be fresh on an untouched network");
        };
        // op_seq 1, not 0: the crash already committed a Rebalance record.
        let CoordMsg::Done { op_seq: 1, .. } = link0
            .roundtrip(&ClusterMsg::Commit {
                ticket,
                req: WireRequest {
                    src: 0,
                    dst: 3,
                    bmin: 64,
                    bmax: 256,
                    delta: 64,
                },
            })
            .unwrap()
        else {
            panic!("commit should land at sequence 1");
        };

        // A new joiner reclaims the crashed id without growing the roster.
        let mut link2 = CoordLink::connect(&coordinator, timeout).unwrap();
        let CoordMsg::Welcome { member: 1, .. } = link2.roundtrip(&ClusterMsg::Join).unwrap()
        else {
            panic!("rejoiner should reclaim id 1");
        };
        let status = fetch_status(&coordinator).unwrap();
        assert!(status.contains("alive=2"), "status was {status}");

        request_stop(&coordinator).unwrap();
        let report = coord_handle.join().unwrap().unwrap();
        assert_eq!(report.violations, 0);
        // Crash rebalance + establish + rejoin rebalance.
        assert_eq!(report.seq, 3);
        assert_eq!(report.aborted_prepares, 0);
    }

    #[test]
    fn a_member_with_a_dead_coordinator_answers_504_but_shuts_down() {
        let booted = boot(1);
        let Some(&addr) = booted.members.first() else {
            panic!("expected one member");
        };
        // Stop the coordinator out from under the member.
        request_stop(&booted.coordinator.to_string()).unwrap();
        booted.coord_handle.join().unwrap().unwrap();

        let replies = session(addr, &["ESTABLISH 0 3 64 256 64", "STATS", "SHUTDOWN"]);
        let [est, stats, bye] = &replies[..] else {
            panic!("expected three replies, got {replies:?}");
        };
        assert!(
            est.starts_with("ERR 504 "),
            "expected a prepare-timeout error, got {est:?}"
        );
        assert!(stats.contains("linked=0"), "stats was {stats:?}");
        assert_eq!(bye, "OK violations=0");
        for h in booted.member_handles {
            assert_eq!(h.join().unwrap().unwrap().violations, 0);
        }
    }
}
