//! drqos-service: a long-lived daemon serving DR-connection operations
//! over a line-based TCP protocol, plus a closed-loop load generator.
//!
//! The daemon (`drqosd`) owns one [`drqos_core::network::Network`] behind
//! a single-writer event loop: per-connection reader threads parse
//! nothing — they forward raw lines into a bounded command queue, and one
//! thread owns all mutable state, so the hot path takes no locks and
//! every response (except `STATS`) is a deterministic function of the
//! command sequence. A full queue is surfaced to the client as `BUSY`
//! backpressure rather than unbounded buffering.
//!
//! Module map:
//!
//! * [`protocol`] — request grammar, response rendering, parsing.
//! * [`error`] — protocol-level error codes 1–99 (domain errors use
//!   `drqos_core::wire` codes 100–499).
//! * [`frame`] — the binary wire framing (`DRQOS_WIRE=binary`):
//!   length-prefixed frames carrying the same verbs, codes, and payloads
//!   as the text mode.
//! * [`engine`] — maps requests onto the `Network` API; owns metrics.
//! * [`metrics`] — log₂-bucketed latency histograms and per-op counters.
//! * [`server`] — TCP accept/reader/event-loop plumbing and graceful,
//!   invariant-checked shutdown.
//! * [`loadgen`] — the closed-loop multi-client load generator used by
//!   `drqos-loadgen` and the smoke tests.
//! * [`clusterd`] — the federation daemons (`drqos-clusterd`): a
//!   coordinator owning the authoritative network and two-phase ledger,
//!   and members serving the client protocol from full replicas synced
//!   over the inter-daemon wire of `drqos-cluster`.
//!
//! See `SERVICE.md` at the repo root for the wire grammar and an example
//! session.

pub mod clusterd;
pub mod engine;
pub mod error;
pub mod frame;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;
