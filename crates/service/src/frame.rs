//! Binary wire framing (`DRQOS_WIRE=binary`).
//!
//! A length-prefixed, fixed-layout encoding of the exact same protocol
//! the text mode speaks — same verbs, same error codes, same payloads —
//! so a binary session decodes to a byte-identical transcript of the
//! equivalent text session (CI proves this; see `tests/service_wire.rs`).
//!
//! ## Request frame
//!
//! ```text
//! [u32 LE len] [u8 opcode] [u64 LE arg]*
//! ```
//!
//! `len` counts the bytes after the length field. Opcodes mirror the
//! verbs 1:1:
//!
//! | opcode | verb          | args                          |
//! |-------:|---------------|-------------------------------|
//! | 1      | `ESTABLISH`   | src, dst, bmin, bmax, delta   |
//! | 2      | `RELEASE`     | id                            |
//! | 3      | `FAIL-LINK`   | link                          |
//! | 4      | `REPAIR-LINK` | link                          |
//! | 5      | `FAIL-NODE`   | node                          |
//! | 6      | `SNAPSHOT`    | —                             |
//! | 7      | `STATS`       | —                             |
//! | 8      | `SHUTDOWN`    | —                             |
//! | 9      | `FAIL-SRLG`   | group                         |
//! | 10     | `REPAIR-SRLG` | group                         |
//!
//! ## Response frame
//!
//! ```text
//! [u32 LE len] [u8 status] [payload]
//! ```
//!
//! Status 0 = `OK` (payload is the UTF-8 `key=value` text), 1 = `ERR`
//! (payload is `[u16 LE code]` + UTF-8 message), 2 = `BUSY` (empty).
//!
//! Malformed frames map onto the *text* protocol's error codes 1–4
//! ([`crate::error`]): empty body → 1, unknown opcode → 2, wrong
//! argument count → 3, torn argument block → 4. No new code space.
//!
//! The daemon decodes request frames to [`Request`] and re-renders them
//! as canonical text lines, so both wire modes share one event-loop and
//! engine path; only the per-connection reader differs.
//!
//! The transport primitives (length prefix, [`FrameReader`], the byte
//! cap) live in [`drqos_core::framing`] and are re-exported here; the
//! inter-daemon cluster protocol (`drqos_cluster::proto`) shares them,
//! so both wire formats frame identically.

use crate::error::ProtocolError;
use crate::protocol::{Request, Response};
use drqos_core::framing::{finish, get_index, get_u64, put_u64};
use std::io;

pub use drqos_core::framing::{read_frame, Fill, FrameReader, MAX_FRAME_BYTES};

/// `ESTABLISH` opcode.
pub const OP_ESTABLISH: u8 = 1;
/// `RELEASE` opcode.
pub const OP_RELEASE: u8 = 2;
/// `FAIL-LINK` opcode.
pub const OP_FAIL_LINK: u8 = 3;
/// `REPAIR-LINK` opcode.
pub const OP_REPAIR_LINK: u8 = 4;
/// `FAIL-NODE` opcode.
pub const OP_FAIL_NODE: u8 = 5;
/// `SNAPSHOT` opcode.
pub const OP_SNAPSHOT: u8 = 6;
/// `STATS` opcode.
pub const OP_STATS: u8 = 7;
/// `SHUTDOWN` opcode.
pub const OP_SHUTDOWN: u8 = 8;
/// `FAIL-SRLG` opcode.
pub const OP_FAIL_SRLG: u8 = 9;
/// `REPAIR-SRLG` opcode.
pub const OP_REPAIR_SRLG: u8 = 10;

/// `OK` response status byte.
pub const STATUS_OK: u8 = 0;
/// `ERR` response status byte.
pub const STATUS_ERR: u8 = 1;
/// `BUSY` response status byte.
pub const STATUS_BUSY: u8 = 2;

/// Verb and argument count for an opcode (`None` = unknown opcode).
fn opcode_info(op: u8) -> Option<(&'static str, usize)> {
    match op {
        OP_ESTABLISH => Some(("ESTABLISH", 5)),
        OP_RELEASE => Some(("RELEASE", 1)),
        OP_FAIL_LINK => Some(("FAIL-LINK", 1)),
        OP_REPAIR_LINK => Some(("REPAIR-LINK", 1)),
        OP_FAIL_NODE => Some(("FAIL-NODE", 1)),
        OP_SNAPSHOT => Some(("SNAPSHOT", 0)),
        OP_STATS => Some(("STATS", 0)),
        OP_SHUTDOWN => Some(("SHUTDOWN", 0)),
        OP_FAIL_SRLG => Some(("FAIL-SRLG", 1)),
        OP_REPAIR_SRLG => Some(("REPAIR-SRLG", 1)),
        _ => None,
    }
}

/// Encodes a request as a complete frame (length field included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + 5 * 8);
    match *req {
        Request::Establish {
            src,
            dst,
            bmin,
            bmax,
            delta,
        } => {
            body.push(OP_ESTABLISH);
            put_u64(&mut body, src as u64);
            put_u64(&mut body, dst as u64);
            put_u64(&mut body, bmin);
            put_u64(&mut body, bmax);
            put_u64(&mut body, delta);
        }
        Request::Release { id } => {
            body.push(OP_RELEASE);
            put_u64(&mut body, id);
        }
        Request::FailLink { link } => {
            body.push(OP_FAIL_LINK);
            put_u64(&mut body, link as u64);
        }
        Request::RepairLink { link } => {
            body.push(OP_REPAIR_LINK);
            put_u64(&mut body, link as u64);
        }
        Request::FailNode { node } => {
            body.push(OP_FAIL_NODE);
            put_u64(&mut body, node as u64);
        }
        Request::FailSrlg { group } => {
            body.push(OP_FAIL_SRLG);
            put_u64(&mut body, group as u64);
        }
        Request::RepairSrlg { group } => {
            body.push(OP_REPAIR_SRLG);
            put_u64(&mut body, group as u64);
        }
        Request::Snapshot => body.push(OP_SNAPSHOT),
        Request::Stats => body.push(OP_STATS),
        Request::Shutdown => body.push(OP_SHUTDOWN),
    }
    finish(body)
}

/// Decodes a request frame body (the bytes after the length field).
///
/// # Errors
///
/// [`ProtocolError`] with the text protocol's codes: 1 for an empty body,
/// 2 for an unknown opcode, 3 for a wrong argument count, 4 for an
/// argument block that is not a whole number of `u64`s or an index that
/// does not fit `usize`.
pub fn decode_request(body: &[u8]) -> Result<Request, ProtocolError> {
    let Some(&op) = body.first() else {
        return Err(ProtocolError::empty());
    };
    let Some((verb, argc)) = opcode_info(op) else {
        return Err(ProtocolError::unknown_command(&format!("opcode {op}")));
    };
    let arg_bytes = body.len() - 1;
    if !arg_bytes.is_multiple_of(8) {
        return Err(ProtocolError::bad_int(&format!(
            "{arg_bytes}-byte argument block"
        )));
    }
    if arg_bytes / 8 != argc {
        return Err(ProtocolError::arg_count(verb, argc, arg_bytes / 8));
    }
    let index = |at: usize| {
        get_index(body, at).ok_or_else(|| ProtocolError::bad_int("argument beyond usize"))
    };
    let int = |at: usize| {
        // Length is pre-checked above, so this read cannot fall short; a
        // zero on the impossible branch still decodes without panicking.
        get_u64(body, at).unwrap_or(0)
    };
    match op {
        OP_ESTABLISH => Ok(Request::Establish {
            src: index(1)?,
            dst: index(9)?,
            bmin: int(17),
            bmax: int(25),
            delta: int(33),
        }),
        OP_RELEASE => Ok(Request::Release { id: int(1) }),
        OP_FAIL_LINK => Ok(Request::FailLink { link: index(1)? }),
        OP_REPAIR_LINK => Ok(Request::RepairLink { link: index(1)? }),
        OP_FAIL_NODE => Ok(Request::FailNode { node: index(1)? }),
        OP_FAIL_SRLG => Ok(Request::FailSrlg { group: index(1)? }),
        OP_REPAIR_SRLG => Ok(Request::RepairSrlg { group: index(1)? }),
        OP_SNAPSHOT => Ok(Request::Snapshot),
        OP_STATS => Ok(Request::Stats),
        // opcode_info returned Some, so only SHUTDOWN remains.
        _ => Ok(Request::Shutdown),
    }
}

/// Encodes a response as a complete frame (length field included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::new();
    match resp {
        Response::Ok(payload) => {
            body.push(STATUS_OK);
            body.extend_from_slice(payload.as_bytes());
        }
        Response::Err { code, message } => {
            body.push(STATUS_ERR);
            body.extend_from_slice(&code.to_le_bytes());
            body.extend_from_slice(message.as_bytes());
        }
        Response::Busy => body.push(STATUS_BUSY),
    }
    finish(body)
}

/// Decodes a response frame body (client side).
///
/// # Errors
///
/// `InvalidData` for an empty body, unknown status byte, or an `ERR`
/// body too short to carry its code.
pub fn decode_response(body: &[u8]) -> io::Result<Response> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let Some(&status) = body.first() else {
        return Err(bad("empty response frame".to_string()));
    };
    match status {
        STATUS_OK => Ok(Response::Ok(
            String::from_utf8_lossy(body.get(1..).unwrap_or_default()).into_owned(),
        )),
        STATUS_ERR => {
            let code_bytes: [u8; 2] = body
                .get(1..3)
                .and_then(|b| b.try_into().ok())
                .ok_or_else(|| bad("ERR frame too short for its code".to_string()))?;
            Ok(Response::Err {
                code: u16::from_le_bytes(code_bytes),
                message: String::from_utf8_lossy(body.get(3..).unwrap_or_default()).into_owned(),
            })
        }
        STATUS_BUSY => Ok(Response::Busy),
        other => Err(bad(format!("unknown response status {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{CODE_ARG_COUNT, CODE_BAD_INT, CODE_EMPTY, CODE_UNKNOWN_COMMAND};

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Establish {
                src: 0,
                dst: 3,
                bmin: 100,
                bmax: 500,
                delta: 100,
            },
            Request::Release { id: 7 },
            Request::FailLink { link: 2 },
            Request::RepairLink { link: 2 },
            Request::FailNode { node: 4 },
            Request::FailSrlg { group: 1 },
            Request::RepairSrlg { group: 1 },
            Request::Snapshot,
            Request::Stats,
            Request::Shutdown,
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in all_requests() {
            let frame = encode_request(&req);
            let (len_bytes, body) = frame.split_at(4);
            let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
            assert_eq!(len, body.len(), "{req:?}: length field mismatch");
            assert_eq!(decode_request(body).unwrap(), req);
        }
    }

    #[test]
    fn decoded_requests_render_to_parseable_lines() {
        for req in all_requests() {
            let line = req.render();
            assert_eq!(crate::protocol::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        let responses = [
            Response::Ok("id=3 bw=500 hops=2 backups=1".into()),
            Response::Ok(String::new()),
            Response::Err {
                code: 302,
                message: "link l4 is already down".into(),
            },
            Response::Busy,
        ];
        for resp in responses {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame[4..]).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_frames_map_onto_text_protocol_codes() {
        assert_eq!(decode_request(&[]).unwrap_err().code, CODE_EMPTY);
        assert_eq!(
            decode_request(&[99]).unwrap_err().code,
            CODE_UNKNOWN_COMMAND
        );
        // RELEASE with no argument block: wrong arg count.
        assert_eq!(
            decode_request(&[OP_RELEASE]).unwrap_err().code,
            CODE_ARG_COUNT
        );
        // SNAPSHOT with a stray argument: wrong arg count.
        let mut body = vec![OP_SNAPSHOT];
        body.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(decode_request(&body).unwrap_err().code, CODE_ARG_COUNT);
        // Torn u64: code 4, same family as a non-integer text argument.
        assert_eq!(
            decode_request(&[OP_RELEASE, 1, 2, 3]).unwrap_err().code,
            CODE_BAD_INT
        );
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let mut bytes = Vec::new();
        for req in all_requests() {
            bytes.extend(encode_request(&req));
        }
        // Deliver one byte at a time: worst-case fragmentation.
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for b in bytes {
            let mut one = &[b][..];
            assert_eq!(reader.fill(&mut one).unwrap(), Fill::Data);
            while let Some(body) = reader.next_frame().unwrap() {
                decoded.push(decode_request(&body).unwrap());
            }
        }
        assert_eq!(decoded, all_requests());
    }

    #[test]
    fn frame_reader_rejects_oversized_announcements() {
        let mut reader = FrameReader::new();
        let mut stream = &((MAX_FRAME_BYTES as u32 + 1).to_le_bytes())[..];
        assert_eq!(reader.fill(&mut stream).unwrap(), Fill::Data);
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn blocking_read_frame_matches_encoder() {
        let frame = encode_request(&Request::Stats);
        let mut stream = &frame[..];
        let body = read_frame(&mut stream).unwrap();
        assert_eq!(decode_request(&body).unwrap(), Request::Stats);
    }
}
