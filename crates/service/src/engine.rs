//! The admission-control engine: one [`Network`] plus the request-metrics
//! layer, driven one command — or one drained queue batch — at a time.
//!
//! The engine is *single-writer by construction*: it is owned by exactly
//! one event loop (see [`crate::server`]) and has no interior locking.
//! Every response except `STATS` is a pure function of the command
//! sequence applied so far, which is what makes protocol sessions
//! golden-traceable.

use crate::error::ProtocolError;
use crate::metrics::{Metrics, OpKind, OpTimer};
use crate::protocol::{self, Request, Response};
use drqos_core::network::{EstablishRequest, Network};
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_core::shard::ShardedNetwork;
use drqos_topology::{LinkId, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One `ESTABLISH` waiting in a batch run: its reply slot, its metrics
/// timer (started at parse time), and the validated request.
struct PendingEstablish {
    slot: usize,
    t0: OpTimer,
    req: EstablishRequest,
}

/// Fills a reply slot without indexing (the daemon zone is panic-free).
fn set_slot(out: &mut [Option<Handled>], slot: usize, handled: Handled) {
    if let Some(s) = out.get_mut(slot) {
        *s = Some(handled);
    }
}

/// What the server loop should do with a handled line.
#[derive(Debug)]
pub enum Handled {
    /// Send this response to the client.
    Reply(Response),
    /// The line was a `SHUTDOWN` request: drain the queue, then call
    /// [`Engine::finish_shutdown`] and send its response.
    ShutdownRequested,
}

/// The network engine behind the daemon.
pub struct Engine {
    net: ShardedNetwork,
    metrics: Metrics,
    /// `BUSY` responses sent by reader threads (they never reach the
    /// engine, so the count crosses threads via an atomic).
    busy: Arc<AtomicU64>,
}

impl Engine {
    /// Wraps a network, sharding it per `DRQOS_SHARDS` (default 1 — the
    /// monolith; see SERVICE.md).
    pub fn new(net: Network) -> Self {
        Self::with_shards(net, drqos_core::env::shards())
    }

    /// Wraps a network with an explicit shard count. In-process tests use
    /// this instead of mutating `DRQOS_SHARDS` (environment writes race
    /// parallel tests).
    pub fn with_shards(net: Network, shards: usize) -> Self {
        Self {
            net: ShardedNetwork::new(net, shards),
            metrics: Metrics::new(),
            busy: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The network under the engine.
    pub fn network(&self) -> &Network {
        self.net.inner()
    }

    /// Shards the admission engine is running with (1 = monolith).
    pub fn shards(&self) -> usize {
        self.net.shards()
    }

    /// The request-metrics layer.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The shared counter reader threads bump when they answer `BUSY`.
    pub fn busy_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.busy)
    }

    /// Handles one line for an interactive (non-server) caller: `SHUTDOWN`
    /// completes immediately. This is the entry point golden-session
    /// replays use.
    pub fn handle_line(&mut self, line: &str) -> Response {
        match self.handle_server_line(line) {
            Handled::Reply(r) => r,
            Handled::ShutdownRequested => self.finish_shutdown(),
        }
    }

    /// Handles one line for the server event loop: `SHUTDOWN` is deferred
    /// so the loop can drain queued commands first. Metrics are recorded
    /// for every line, including malformed ones.
    pub fn handle_server_line(&mut self, line: &str) -> Handled {
        let t0 = OpTimer::start();
        match protocol::parse(line) {
            Ok(Request::Shutdown) => {
                self.metrics.record(OpKind::Shutdown, t0.elapsed(), false);
                Handled::ShutdownRequested
            }
            Ok(req) => {
                let resp = self.dispatch(&req);
                self.metrics
                    .record(op_kind(&req), t0.elapsed(), resp.is_err());
                Handled::Reply(resp)
            }
            Err(e) => {
                self.metrics.record(OpKind::Invalid, t0.elapsed(), true);
                Handled::Reply(e.into())
            }
        }
    }

    /// Handles one drained queue batch for the server event loop,
    /// admitting runs of consecutive `ESTABLISH` commands through
    /// [`Network::establish_batch`] (one shared scratch/flood pass per
    /// run instead of one per request).
    ///
    /// Replies land in input order, one per line. Each run is sorted by
    /// [`Network::contention_order`] before admission and the results are
    /// mapped back; this is observable only as admission order, which
    /// concurrent clients have no contract over (commands in one drained
    /// batch come from distinct connections — each client is closed-loop).
    /// The `bw=` field of a batched establish reply reflects the network
    /// *after the whole run commits*, exactly as if the requests had been
    /// admitted back-to-back with no reader between them.
    pub fn handle_server_batch(&mut self, lines: &[String]) -> Vec<Handled> {
        let mut out: Vec<Option<Handled>> = lines.iter().map(|_| None).collect();
        let mut run: Vec<PendingEstablish> = Vec::new();
        for (slot, line) in lines.iter().enumerate() {
            let t0 = OpTimer::start();
            let parsed = protocol::parse(line);
            if let Ok(Request::Establish {
                src,
                dst,
                bmin,
                bmax,
                delta,
            }) = parsed
            {
                match build_qos(bmin, bmax, delta) {
                    Ok(qos) => run.push(PendingEstablish {
                        slot,
                        t0,
                        req: EstablishRequest {
                            src: NodeId(src),
                            dst: NodeId(dst),
                            qos,
                        },
                    }),
                    // A QoS-range error never touches the network, so it
                    // cannot split the run.
                    Err(resp) => {
                        self.metrics.record(OpKind::Establish, t0.elapsed(), true);
                        set_slot(&mut out, slot, Handled::Reply(resp));
                    }
                }
                continue;
            }
            // Any other command is an ordering barrier: flush the run
            // first so state mutations keep their queue order.
            self.flush_establish_run(&mut run, &mut out);
            let handled = match parsed {
                Ok(Request::Shutdown) => {
                    self.metrics.record(OpKind::Shutdown, t0.elapsed(), false);
                    Handled::ShutdownRequested
                }
                Ok(req) => {
                    let resp = self.dispatch(&req);
                    self.metrics
                        .record(op_kind(&req), t0.elapsed(), resp.is_err());
                    Handled::Reply(resp)
                }
                Err(e) => {
                    self.metrics.record(OpKind::Invalid, t0.elapsed(), true);
                    Handled::Reply(e.into())
                }
            };
            set_slot(&mut out, slot, handled);
        }
        self.flush_establish_run(&mut run, &mut out);
        out.into_iter()
            .map(|h| {
                h.unwrap_or_else(|| {
                    Handled::Reply(ProtocolError::internal("batch reply slot unfilled").into())
                })
            })
            .collect()
    }

    /// Admits one buffered establish run: a single request goes through
    /// the ordinary path, a group goes through the batched planner.
    fn flush_establish_run(
        &mut self,
        run: &mut Vec<PendingEstablish>,
        out: &mut [Option<Handled>],
    ) {
        if run.len() <= 1 {
            if let Some(p) = run.pop() {
                let resp = self.admit(p.req);
                self.metrics
                    .record(OpKind::Establish, p.t0.elapsed(), resp.is_err());
                set_slot(out, p.slot, Handled::Reply(resp));
            }
            return;
        }
        let reqs: Vec<EstablishRequest> = run.iter().map(|p| p.req).collect();
        let order = self.net.inner().contention_order(&reqs);
        let sorted: Vec<EstablishRequest> =
            order.iter().filter_map(|&i| reqs.get(i).copied()).collect();
        // A run under a sharded engine is a *wave*: per-shard parallel
        // planning plus the two-phase cross-shard commit. Results are
        // byte-identical to the monolithic batch (`fuzz --diff-shard`).
        let results = if self.net.shards() > 1 {
            self.net.establish_wave(&sorted)
        } else {
            self.net.inner_mut().establish_batch(&sorted)
        };
        // Un-permute: the result at batch position k answers request
        // `order[k]`.
        let mut by_request: Vec<Option<Response>> = reqs.iter().map(|_| None).collect();
        for (k, &i) in order.iter().enumerate() {
            let resp = match results.get(k) {
                Some(Ok(id)) => self.render_admitted(*id),
                Some(Err(e)) => Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                },
                None => ProtocolError::internal("batch admission result missing").into(),
            };
            if let Some(s) = by_request.get_mut(i) {
                *s = Some(resp);
            }
        }
        for (p, resp) in run.drain(..).zip(by_request) {
            let resp = resp.unwrap_or_else(|| {
                ProtocolError::internal("batch admission result missing").into()
            });
            self.metrics
                .record(OpKind::Establish, p.t0.elapsed(), resp.is_err());
            set_slot(out, p.slot, Handled::Reply(resp));
        }
    }

    /// Runs the final invariant check and reports the violation count.
    /// The caller (event loop or [`Engine::handle_line`]) sends this as
    /// the `SHUTDOWN` response after the queue is drained.
    pub fn finish_shutdown(&mut self) -> Response {
        let violations = self.net.inner_mut().check_invariants();
        match violations.first() {
            None => Response::Ok("violations=0".to_string()),
            // Surface the first violation's stable code and the full count;
            // the daemon also exits non-zero in this case.
            Some(first) => Response::Err {
                code: first.wire_code(),
                message: format!("shutdown with {} invariant violations", violations.len()),
            },
        }
    }

    fn dispatch(&mut self, req: &Request) -> Response {
        match *req {
            Request::Establish {
                src,
                dst,
                bmin,
                bmax,
                delta,
            } => self.establish(src, dst, bmin, bmax, delta),
            Request::Release { id } => {
                let cid = drqos_core::channel::ConnectionId(id);
                // `release` retreats the channel to its QoS minimum before
                // removing it, so read the bandwidth actually held first.
                let held = self
                    .net
                    .inner()
                    .connection(cid)
                    .map(|c| c.bandwidth().as_kbps());
                match (self.net.inner_mut().release(cid), held) {
                    (Ok(_), Some(kbps)) => Response::Ok(format!("freed={kbps}")),
                    // A successful release of a connection that was not
                    // readable beforehand would mean the engine's view of
                    // the network is inconsistent; report, don't panic.
                    (Ok(_), None) => {
                        ProtocolError::internal("released connection had no readable bandwidth")
                            .into()
                    }
                    (Err(e), _) => Response::Err {
                        code: e.wire_code(),
                        message: e.to_string(),
                    },
                }
            }
            Request::FailLink { link } => match self.net.inner_mut().fail_link(LinkId(link)) {
                Ok(report) => Response::Ok(format!(
                    "activated={} dropped={} lost_backup={} retreated={}",
                    report.activated.len(),
                    report.dropped.len(),
                    report.lost_backup.len(),
                    report.retreated.len()
                )),
                Err(e) => Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                },
            },
            Request::RepairLink { link } => match self.net.inner_mut().repair_link(LinkId(link)) {
                Ok(regained) => Response::Ok(format!("regained={}", regained.len())),
                Err(e) => Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                },
            },
            Request::FailNode { node } => match self.net.inner_mut().fail_node(NodeId(node)) {
                Ok(reports) => {
                    let activated: usize = reports.iter().map(|r| r.activated.len()).sum();
                    let dropped: usize = reports.iter().map(|r| r.dropped.len()).sum();
                    Response::Ok(format!(
                        "links={} activated={} dropped={}",
                        reports.len(),
                        activated,
                        dropped
                    ))
                }
                Err(e) => Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                },
            },
            Request::FailSrlg { group } => match self.net.inner_mut().fail_srlg(group) {
                Ok(reports) => {
                    let activated: usize = reports.iter().map(|r| r.activated.len()).sum();
                    let dropped: usize = reports.iter().map(|r| r.dropped.len()).sum();
                    Response::Ok(format!(
                        "links={} activated={} dropped={}",
                        reports.len(),
                        activated,
                        dropped
                    ))
                }
                Err(e) => Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                },
            },
            Request::RepairSrlg { group } => match self.net.inner_mut().repair_srlg(group) {
                Ok(regained) => Response::Ok(format!("regained={}", regained.len())),
                Err(e) => Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                },
            },
            Request::Snapshot => Response::Ok(self.snapshot_payload()),
            Request::Stats => Response::Ok(self.stats_payload()),
            // handle_server_line routes SHUTDOWN before dispatch; answering
            // it here anyway (instead of unreachable!) keeps dispatch total.
            Request::Shutdown => self.finish_shutdown(),
        }
    }

    fn establish(&mut self, src: usize, dst: usize, bmin: u64, bmax: u64, delta: u64) -> Response {
        match build_qos(bmin, bmax, delta) {
            Ok(qos) => self.admit(EstablishRequest {
                src: NodeId(src),
                dst: NodeId(dst),
                qos,
            }),
            Err(resp) => resp,
        }
    }

    /// Admits one request sequentially and renders its reply.
    fn admit(&mut self, req: EstablishRequest) -> Response {
        match self.net.inner_mut().establish(req.src, req.dst, req.qos) {
            Ok(id) => self.render_admitted(id),
            Err(e) => Response::Err {
                code: e.wire_code(),
                message: e.to_string(),
            },
        }
    }

    /// Renders the `OK` reply for an admitted connection id.
    fn render_admitted(&self, id: drqos_core::channel::ConnectionId) -> Response {
        match self.net.inner().connection(id) {
            Some(c) => Response::Ok(format!(
                "id={} bw={} hops={} backups={}",
                id.0,
                c.bandwidth().as_kbps(),
                c.primary().hop_count(),
                c.backup_count()
            )),
            // An admitted connection must be readable back; if not the
            // engine state is inconsistent — report, don't panic.
            None => ProtocolError::internal("established connection not readable back").into(),
        }
    }

    /// The deterministic `SNAPSHOT` payload: counts and integer totals
    /// only — no floats, no wall-clock — so concurrent sessions that end
    /// in the same network state produce the same line.
    fn snapshot_payload(&self) -> String {
        format!(
            "conns={} bw={} dropped={} epoch={} up={} nodes={} links={}",
            self.net.inner().len(),
            self.net.inner().total_primary_bandwidth().as_kbps(),
            self.net.inner().dropped_total(),
            self.net.inner().topology_epoch(),
            self.net.inner().up_links().count(),
            self.net.inner().graph().node_count(),
            self.net.inner().graph().link_count()
        )
    }

    /// The `STATS` payload: the one intentionally non-deterministic reply
    /// (latency and throughput are wall-clock measurements; the route
    /// cache counters at the end are deterministic again — they count
    /// admission lookups, not time).
    fn stats_payload(&self) -> String {
        let merged = self.metrics.merged_latency();
        let cache = self.net.inner().route_cache_stats();
        format!(
            "ops={} errors={} admitted={} rejected={} busy={} \
             p50_us={} p95_us={} p99_us={} ops_per_sec={} \
             cache_hits={} cache_misses={} cache_stale={}",
            self.metrics.total_ops(),
            self.metrics.total_errors(),
            self.metrics.admitted,
            self.metrics.rejected,
            self.busy.load(Ordering::Relaxed),
            merged.quantile_us(0.50),
            merged.quantile_us(0.95),
            merged.quantile_us(0.99),
            self.metrics.ops_per_sec() as u64,
            cache.hits,
            cache.misses,
            cache.stale_evictions
        )
    }
}

/// Validates an elastic QoS range from wire integers, mapping failures
/// onto their wire-coded error response.
fn build_qos(bmin: u64, bmax: u64, delta: u64) -> Result<ElasticQos, Response> {
    ElasticQos::new(
        Bandwidth::kbps(bmin),
        Bandwidth::kbps(bmax),
        Bandwidth::kbps(delta),
        1.0,
    )
    .map_err(|e| Response::Err {
        code: e.wire_code(),
        message: e.to_string(),
    })
}

fn op_kind(req: &Request) -> OpKind {
    match req {
        Request::Establish { .. } => OpKind::Establish,
        Request::Release { .. } => OpKind::Release,
        Request::FailLink { .. } => OpKind::FailLink,
        Request::RepairLink { .. } => OpKind::RepairLink,
        Request::FailNode { .. } => OpKind::FailNode,
        Request::FailSrlg { .. } => OpKind::FailSrlg,
        Request::RepairSrlg { .. } => OpKind::RepairSrlg,
        Request::Snapshot => OpKind::Snapshot,
        Request::Stats => OpKind::Stats,
        Request::Shutdown => OpKind::Shutdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::network::NetworkConfig;
    use drqos_topology::regular;

    fn engine() -> Engine {
        Engine::new(Network::new(
            regular::ring(6).unwrap(),
            NetworkConfig::default(),
        ))
    }

    #[test]
    fn establish_release_round_trip() {
        let mut e = engine();
        let r = e.handle_line("ESTABLISH 0 3 100 500 100");
        let Response::Ok(payload) = &r else {
            panic!("expected OK, got {r}");
        };
        let id = protocol::payload_field(payload, "id").unwrap();
        assert_eq!(protocol::payload_field(payload, "bw"), Some(500));
        assert_eq!(protocol::payload_field(payload, "backups"), Some(1));
        let r = e.handle_line(&format!("RELEASE {id}"));
        assert_eq!(r, Response::Ok("freed=500".to_string()));
        assert_eq!(e.metrics().admitted, 1);
    }

    #[test]
    fn errors_carry_stable_codes() {
        let mut e = engine();
        match e.handle_line("RELEASE 42") {
            Response::Err { code, .. } => assert_eq!(code, 300),
            other => panic!("expected ERR, got {other}"),
        }
        match e.handle_line("ESTABLISH 1 1 100 500 100") {
            Response::Err { code, .. } => assert_eq!(code, 201),
            other => panic!("expected ERR, got {other}"),
        }
        match e.handle_line("ESTABLISH 0 2 0 500 100") {
            Response::Err { code, .. } => assert_eq!(code, 100),
            other => panic!("expected ERR, got {other}"),
        }
        match e.handle_line("NONSENSE") {
            Response::Err { code, .. } => assert_eq!(code, 2),
            other => panic!("expected ERR, got {other}"),
        }
        assert_eq!(e.metrics().total_errors(), 4);
    }

    #[test]
    fn snapshot_is_deterministic_and_integer_only() {
        let mut e = engine();
        e.handle_line("ESTABLISH 0 3 100 500 100");
        let a = e.handle_line("SNAPSHOT");
        let b = e.handle_line("SNAPSHOT");
        assert_eq!(a, b);
        let Response::Ok(payload) = a else {
            panic!("SNAPSHOT must succeed")
        };
        assert_eq!(protocol::payload_field(&payload, "conns"), Some(1));
        assert_eq!(protocol::payload_field(&payload, "bw"), Some(500));
        assert_eq!(protocol::payload_field(&payload, "nodes"), Some(6));
        assert!(!payload.contains('.'), "floats leak: {payload}");
    }

    #[test]
    fn failure_commands_report_counts() {
        let mut e = engine();
        assert!(matches!(
            e.handle_line("ESTABLISH 0 3 100 500 100"),
            Response::Ok(_)
        ));
        let r = e.handle_line("FAIL-LINK 0");
        let Response::Ok(payload) = r else {
            panic!("FAIL-LINK on an up link must succeed");
        };
        assert!(payload.starts_with("activated="));
        let r = e.handle_line("FAIL-LINK 0");
        assert!(matches!(r, Response::Err { code: 302, .. }));
        let r = e.handle_line("REPAIR-LINK 0");
        assert!(matches!(r, Response::Ok(_)));
    }

    #[test]
    fn shutdown_checks_invariants() {
        let mut e = engine();
        e.handle_line("ESTABLISH 0 2 100 500 100");
        assert_eq!(
            e.handle_line("SHUTDOWN"),
            Response::Ok("violations=0".to_string())
        );
    }

    #[test]
    fn server_batch_matches_sequential_lines_on_an_idle_network() {
        // On an idle network every link has zero heat, so the contention
        // sort is the identity and the batch path must reproduce the
        // sequential replies byte-for-byte — including the error slots.
        let lines: Vec<String> = [
            "ESTABLISH 0 3 100 500 100",
            "ESTABLISH 1 4 100 500 100",
            "ESTABLISH 2 2 100 500 100", // src == dst: admission error
            "BOGUS",
            "RELEASE 0",
            "SNAPSHOT",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut sequential = engine();
        let expected: Vec<String> = lines
            .iter()
            .map(|l| sequential.handle_line(l).to_string())
            .collect();
        let mut batched = engine();
        let got: Vec<String> = batched
            .handle_server_batch(&lines)
            .into_iter()
            .map(|h| match h {
                Handled::Reply(r) => r.to_string(),
                Handled::ShutdownRequested => "SHUTDOWN".to_string(),
            })
            .collect();
        assert_eq!(got, expected);
        assert_eq!(
            batched.metrics().total_ops(),
            sequential.metrics().total_ops()
        );
        assert_eq!(batched.metrics().admitted, 2);
        assert_eq!(batched.metrics().rejected, 1);
    }

    #[test]
    fn server_batch_defers_shutdown_and_serves_the_rest() {
        let lines: Vec<String> = ["ESTABLISH 0 3 100 500 100", "SHUTDOWN", "SNAPSHOT"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut e = engine();
        let handled = e.handle_server_batch(&lines);
        assert!(matches!(
            handled.first(),
            Some(Handled::Reply(Response::Ok(_)))
        ));
        assert!(matches!(handled.get(1), Some(Handled::ShutdownRequested)));
        assert!(matches!(
            handled.get(2),
            Some(Handled::Reply(Response::Ok(_)))
        ));
    }

    #[test]
    fn batched_establish_replies_read_post_batch_bandwidth() {
        // Two antipodal connections on a tight ring force redistribution;
        // both replies must report the settled (post-batch) bandwidth, and
        // both must be admitted.
        let mut e = Engine::new(Network::new(
            regular::ring(6).unwrap(),
            drqos_core::network::NetworkConfig {
                capacity: drqos_core::qos::Bandwidth::kbps(800),
                ..drqos_core::network::NetworkConfig::default()
            },
        ));
        let lines: Vec<String> = ["ESTABLISH 0 3 100 500 100", "ESTABLISH 3 0 100 500 100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut ids = Vec::new();
        for h in e.handle_server_batch(&lines) {
            let Handled::Reply(Response::Ok(payload)) = h else {
                panic!("both batched establishes must be admitted: {h:?}");
            };
            let id = protocol::payload_field(&payload, "id").unwrap();
            let bw = protocol::payload_field(&payload, "bw").unwrap();
            let now = e
                .network()
                .connection(drqos_core::channel::ConnectionId(id))
                .unwrap()
                .bandwidth()
                .as_kbps();
            assert_eq!(bw, now, "reply bw must match settled state for id {id}");
            ids.push(id);
        }
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn sharded_batches_reply_byte_identically_to_the_monolith() {
        // The same drained batch through a 4-shard engine and the
        // monolith: every reply line must match, and the run (length > 1)
        // must actually exercise the wave path.
        let lines: Vec<String> = [
            "ESTABLISH 0 3 100 500 100",
            "ESTABLISH 1 4 100 500 100",
            "ESTABLISH 2 5 100 500 100",
            "ESTABLISH 2 2 100 500 100",
            "SNAPSHOT",
            "ESTABLISH 4 1 100 500 100",
            "ESTABLISH 5 2 100 500 100",
            "RELEASE 0",
            "SNAPSHOT",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let net = || Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let mut mono = Engine::with_shards(net(), 1);
        let mut sharded = Engine::with_shards(net(), 4);
        assert_eq!(sharded.shards(), 4);
        let render = |h: Handled| match h {
            Handled::Reply(r) => r.to_string(),
            Handled::ShutdownRequested => "SHUTDOWN".to_string(),
        };
        let want: Vec<String> = mono
            .handle_server_batch(&lines)
            .into_iter()
            .map(render)
            .collect();
        let got: Vec<String> = sharded
            .handle_server_batch(&lines)
            .into_iter()
            .map(render)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn stats_reports_counters() {
        let mut e = engine();
        e.handle_line("ESTABLISH 0 2 100 500 100");
        e.handle_line("BOGUS");
        let Response::Ok(payload) = e.handle_line("STATS") else {
            panic!("STATS must succeed");
        };
        assert_eq!(protocol::payload_field(&payload, "admitted"), Some(1));
        assert_eq!(protocol::payload_field(&payload, "errors"), Some(1));
        assert_eq!(protocol::payload_field(&payload, "busy"), Some(0));
        // ops counted *before* this STATS call is recorded: establish +
        // invalid.
        assert_eq!(protocol::payload_field(&payload, "ops"), Some(2));
    }
}
