//! The admission-control engine: one [`Network`] plus the request-metrics
//! layer, driven one command at a time.
//!
//! The engine is *single-writer by construction*: it is owned by exactly
//! one event loop (see [`crate::server`]) and has no interior locking.
//! Every response except `STATS` is a pure function of the command
//! sequence applied so far, which is what makes protocol sessions
//! golden-traceable.

use crate::error::ProtocolError;
use crate::metrics::{Metrics, OpKind, OpTimer};
use crate::protocol::{self, Request, Response};
use drqos_core::network::Network;
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_topology::{LinkId, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What the server loop should do with a handled line.
#[derive(Debug)]
pub enum Handled {
    /// Send this response to the client.
    Reply(Response),
    /// The line was a `SHUTDOWN` request: drain the queue, then call
    /// [`Engine::finish_shutdown`] and send its response.
    ShutdownRequested,
}

/// The network engine behind the daemon.
pub struct Engine {
    net: Network,
    metrics: Metrics,
    /// `BUSY` responses sent by reader threads (they never reach the
    /// engine, so the count crosses threads via an atomic).
    busy: Arc<AtomicU64>,
}

impl Engine {
    /// Wraps a network.
    pub fn new(net: Network) -> Self {
        Self {
            net,
            metrics: Metrics::new(),
            busy: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The network under the engine.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The request-metrics layer.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The shared counter reader threads bump when they answer `BUSY`.
    pub fn busy_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.busy)
    }

    /// Handles one line for an interactive (non-server) caller: `SHUTDOWN`
    /// completes immediately. This is the entry point golden-session
    /// replays use.
    pub fn handle_line(&mut self, line: &str) -> Response {
        match self.handle_server_line(line) {
            Handled::Reply(r) => r,
            Handled::ShutdownRequested => self.finish_shutdown(),
        }
    }

    /// Handles one line for the server event loop: `SHUTDOWN` is deferred
    /// so the loop can drain queued commands first. Metrics are recorded
    /// for every line, including malformed ones.
    pub fn handle_server_line(&mut self, line: &str) -> Handled {
        let t0 = OpTimer::start();
        match protocol::parse(line) {
            Ok(Request::Shutdown) => {
                self.metrics.record(OpKind::Shutdown, t0.elapsed(), false);
                Handled::ShutdownRequested
            }
            Ok(req) => {
                let resp = self.dispatch(&req);
                self.metrics
                    .record(op_kind(&req), t0.elapsed(), resp.is_err());
                Handled::Reply(resp)
            }
            Err(e) => {
                self.metrics.record(OpKind::Invalid, t0.elapsed(), true);
                Handled::Reply(e.into())
            }
        }
    }

    /// Runs the final invariant check and reports the violation count.
    /// The caller (event loop or [`Engine::handle_line`]) sends this as
    /// the `SHUTDOWN` response after the queue is drained.
    pub fn finish_shutdown(&mut self) -> Response {
        let violations = self.net.check_invariants();
        match violations.first() {
            None => Response::Ok("violations=0".to_string()),
            // Surface the first violation's stable code and the full count;
            // the daemon also exits non-zero in this case.
            Some(first) => Response::Err {
                code: first.wire_code(),
                message: format!("shutdown with {} invariant violations", violations.len()),
            },
        }
    }

    fn dispatch(&mut self, req: &Request) -> Response {
        match *req {
            Request::Establish {
                src,
                dst,
                bmin,
                bmax,
                delta,
            } => self.establish(src, dst, bmin, bmax, delta),
            Request::Release { id } => {
                let cid = drqos_core::channel::ConnectionId(id);
                // `release` retreats the channel to its QoS minimum before
                // removing it, so read the bandwidth actually held first.
                let held = self.net.connection(cid).map(|c| c.bandwidth().as_kbps());
                match (self.net.release(cid), held) {
                    (Ok(_), Some(kbps)) => Response::Ok(format!("freed={kbps}")),
                    // A successful release of a connection that was not
                    // readable beforehand would mean the engine's view of
                    // the network is inconsistent; report, don't panic.
                    (Ok(_), None) => {
                        ProtocolError::internal("released connection had no readable bandwidth")
                            .into()
                    }
                    (Err(e), _) => Response::Err {
                        code: e.wire_code(),
                        message: e.to_string(),
                    },
                }
            }
            Request::FailLink { link } => match self.net.fail_link(LinkId(link)) {
                Ok(report) => Response::Ok(format!(
                    "activated={} dropped={} lost_backup={} retreated={}",
                    report.activated.len(),
                    report.dropped.len(),
                    report.lost_backup.len(),
                    report.retreated.len()
                )),
                Err(e) => Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                },
            },
            Request::RepairLink { link } => match self.net.repair_link(LinkId(link)) {
                Ok(regained) => Response::Ok(format!("regained={}", regained.len())),
                Err(e) => Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                },
            },
            Request::FailNode { node } => match self.net.fail_node(NodeId(node)) {
                Ok(reports) => {
                    let activated: usize = reports.iter().map(|r| r.activated.len()).sum();
                    let dropped: usize = reports.iter().map(|r| r.dropped.len()).sum();
                    Response::Ok(format!(
                        "links={} activated={} dropped={}",
                        reports.len(),
                        activated,
                        dropped
                    ))
                }
                Err(e) => Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                },
            },
            Request::Snapshot => Response::Ok(self.snapshot_payload()),
            Request::Stats => Response::Ok(self.stats_payload()),
            // handle_server_line routes SHUTDOWN before dispatch; answering
            // it here anyway (instead of unreachable!) keeps dispatch total.
            Request::Shutdown => self.finish_shutdown(),
        }
    }

    fn establish(&mut self, src: usize, dst: usize, bmin: u64, bmax: u64, delta: u64) -> Response {
        let qos = match ElasticQos::new(
            Bandwidth::kbps(bmin),
            Bandwidth::kbps(bmax),
            Bandwidth::kbps(delta),
            1.0,
        ) {
            Ok(q) => q,
            Err(e) => {
                return Response::Err {
                    code: e.wire_code(),
                    message: e.to_string(),
                }
            }
        };
        match self.net.establish(NodeId(src), NodeId(dst), qos) {
            Ok(id) => match self.net.connection(id) {
                Some(c) => Response::Ok(format!(
                    "id={} bw={} hops={} backups={}",
                    id.0,
                    c.bandwidth().as_kbps(),
                    c.primary().hop_count(),
                    c.backup_count()
                )),
                // An admitted connection must be readable back; if not the
                // engine state is inconsistent — report, don't panic.
                None => ProtocolError::internal("established connection not readable back").into(),
            },
            Err(e) => Response::Err {
                code: e.wire_code(),
                message: e.to_string(),
            },
        }
    }

    /// The deterministic `SNAPSHOT` payload: counts and integer totals
    /// only — no floats, no wall-clock — so concurrent sessions that end
    /// in the same network state produce the same line.
    fn snapshot_payload(&self) -> String {
        format!(
            "conns={} bw={} dropped={} epoch={} up={} nodes={} links={}",
            self.net.len(),
            self.net.total_primary_bandwidth().as_kbps(),
            self.net.dropped_total(),
            self.net.topology_epoch(),
            self.net.up_links().count(),
            self.net.graph().node_count(),
            self.net.graph().link_count()
        )
    }

    /// The `STATS` payload: the one intentionally non-deterministic reply
    /// (latency and throughput are wall-clock measurements; the route
    /// cache counters at the end are deterministic again — they count
    /// admission lookups, not time).
    fn stats_payload(&self) -> String {
        let merged = self.metrics.merged_latency();
        let cache = self.net.route_cache_stats();
        format!(
            "ops={} errors={} admitted={} rejected={} busy={} \
             p50_us={} p95_us={} p99_us={} ops_per_sec={} \
             cache_hits={} cache_misses={} cache_stale={}",
            self.metrics.total_ops(),
            self.metrics.total_errors(),
            self.metrics.admitted,
            self.metrics.rejected,
            self.busy.load(Ordering::Relaxed),
            merged.quantile_us(0.50),
            merged.quantile_us(0.95),
            merged.quantile_us(0.99),
            self.metrics.ops_per_sec() as u64,
            cache.hits,
            cache.misses,
            cache.stale_evictions
        )
    }
}

fn op_kind(req: &Request) -> OpKind {
    match req {
        Request::Establish { .. } => OpKind::Establish,
        Request::Release { .. } => OpKind::Release,
        Request::FailLink { .. } => OpKind::FailLink,
        Request::RepairLink { .. } => OpKind::RepairLink,
        Request::FailNode { .. } => OpKind::FailNode,
        Request::Snapshot => OpKind::Snapshot,
        Request::Stats => OpKind::Stats,
        Request::Shutdown => OpKind::Shutdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::network::NetworkConfig;
    use drqos_topology::regular;

    fn engine() -> Engine {
        Engine::new(Network::new(
            regular::ring(6).unwrap(),
            NetworkConfig::default(),
        ))
    }

    #[test]
    fn establish_release_round_trip() {
        let mut e = engine();
        let r = e.handle_line("ESTABLISH 0 3 100 500 100");
        let Response::Ok(payload) = &r else {
            panic!("expected OK, got {r}");
        };
        let id = protocol::payload_field(payload, "id").unwrap();
        assert_eq!(protocol::payload_field(payload, "bw"), Some(500));
        assert_eq!(protocol::payload_field(payload, "backups"), Some(1));
        let r = e.handle_line(&format!("RELEASE {id}"));
        assert_eq!(r, Response::Ok("freed=500".to_string()));
        assert_eq!(e.metrics().admitted, 1);
    }

    #[test]
    fn errors_carry_stable_codes() {
        let mut e = engine();
        match e.handle_line("RELEASE 42") {
            Response::Err { code, .. } => assert_eq!(code, 300),
            other => panic!("expected ERR, got {other}"),
        }
        match e.handle_line("ESTABLISH 1 1 100 500 100") {
            Response::Err { code, .. } => assert_eq!(code, 201),
            other => panic!("expected ERR, got {other}"),
        }
        match e.handle_line("ESTABLISH 0 2 0 500 100") {
            Response::Err { code, .. } => assert_eq!(code, 100),
            other => panic!("expected ERR, got {other}"),
        }
        match e.handle_line("NONSENSE") {
            Response::Err { code, .. } => assert_eq!(code, 2),
            other => panic!("expected ERR, got {other}"),
        }
        assert_eq!(e.metrics().total_errors(), 4);
    }

    #[test]
    fn snapshot_is_deterministic_and_integer_only() {
        let mut e = engine();
        e.handle_line("ESTABLISH 0 3 100 500 100");
        let a = e.handle_line("SNAPSHOT");
        let b = e.handle_line("SNAPSHOT");
        assert_eq!(a, b);
        let Response::Ok(payload) = a else {
            panic!("SNAPSHOT must succeed")
        };
        assert_eq!(protocol::payload_field(&payload, "conns"), Some(1));
        assert_eq!(protocol::payload_field(&payload, "bw"), Some(500));
        assert_eq!(protocol::payload_field(&payload, "nodes"), Some(6));
        assert!(!payload.contains('.'), "floats leak: {payload}");
    }

    #[test]
    fn failure_commands_report_counts() {
        let mut e = engine();
        assert!(matches!(
            e.handle_line("ESTABLISH 0 3 100 500 100"),
            Response::Ok(_)
        ));
        let r = e.handle_line("FAIL-LINK 0");
        let Response::Ok(payload) = r else {
            panic!("FAIL-LINK on an up link must succeed");
        };
        assert!(payload.starts_with("activated="));
        let r = e.handle_line("FAIL-LINK 0");
        assert!(matches!(r, Response::Err { code: 302, .. }));
        let r = e.handle_line("REPAIR-LINK 0");
        assert!(matches!(r, Response::Ok(_)));
    }

    #[test]
    fn shutdown_checks_invariants() {
        let mut e = engine();
        e.handle_line("ESTABLISH 0 2 100 500 100");
        assert_eq!(
            e.handle_line("SHUTDOWN"),
            Response::Ok("violations=0".to_string())
        );
    }

    #[test]
    fn stats_reports_counters() {
        let mut e = engine();
        e.handle_line("ESTABLISH 0 2 100 500 100");
        e.handle_line("BOGUS");
        let Response::Ok(payload) = e.handle_line("STATS") else {
            panic!("STATS must succeed");
        };
        assert_eq!(protocol::payload_field(&payload, "admitted"), Some(1));
        assert_eq!(protocol::payload_field(&payload, "errors"), Some(1));
        assert_eq!(protocol::payload_field(&payload, "busy"), Some(0));
        // ops counted *before* this STATS call is recorded: establish +
        // invalid.
        assert_eq!(protocol::payload_field(&payload, "ops"), Some(2));
    }
}
