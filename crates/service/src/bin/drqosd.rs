//! `drqosd` — the DR-connection daemon.
//!
//! Boots a [`drqos_core::network::Network`] over a regular topology and
//! serves the line protocol on TCP until a `SHUTDOWN` command completes.
//! On exit it dumps the request metrics to
//! `target/experiments/service_runtime.json` and exits 0 only if the
//! shutdown invariant check found nothing.
//!
//! ```text
//! drqosd [--port N] [--topology ring|torus] [--nodes N]
//!        [--rows R] [--cols C] [--capacity KBPS] [--seed N]
//! ```
//!
//! With `DRQOS_SRLG_COUNT` set, the daemon derives that many shared-risk
//! link groups from `--seed` at startup (each `DRQOS_SRLG_SIZE` links,
//! disjoint); `FAIL-SRLG g` / `REPAIR-SRLG g` then fire and heal group
//! `g` atomically.

use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::Bandwidth;
use drqos_service::server::Server;
use drqos_topology::regular;
use std::fs;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    port: u16,
    topology: String,
    nodes: usize,
    rows: usize,
    cols: usize,
    capacity_kbps: u64,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            port: 7841,
            topology: "torus".to_string(),
            nodes: 12,
            rows: 6,
            cols: 6,
            capacity_kbps: 10_000,
            seed: 1,
        }
    }
}

const USAGE: &str = "usage: drqosd [--port N] [--topology ring|torus] \
                     [--nodes N] [--rows R] [--cols C] [--capacity KBPS] \
                     [--seed N]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--port" => {
                args.port = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --port\n{USAGE}"))?;
            }
            "--topology" => args.topology = value(flag)?,
            "--nodes" => {
                args.nodes = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --nodes\n{USAGE}"))?;
            }
            "--rows" => {
                args.rows = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --rows\n{USAGE}"))?;
            }
            "--cols" => {
                args.cols = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --cols\n{USAGE}"))?;
            }
            "--capacity" => {
                args.capacity_kbps = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --capacity\n{USAGE}"))?;
            }
            "--seed" => {
                args.seed = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --seed\n{USAGE}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn build_network(args: &Args) -> Result<Network, String> {
    let graph = match args.topology.as_str() {
        "ring" => regular::ring(args.nodes).map_err(|e| e.to_string())?,
        "torus" => regular::torus(args.rows, args.cols).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown topology {other} (ring|torus)")),
    };
    let config = NetworkConfig {
        capacity: Bandwidth::kbps(args.capacity_kbps),
        ..NetworkConfig::default()
    };
    let mut net = Network::new(graph, config);
    let srlg_count = drqos_core::env::srlg_count();
    if srlg_count > 0 {
        let registered = drqos_core::register_seeded_srlgs(
            &mut net,
            srlg_count,
            drqos_core::env::srlg_size(),
            args.seed,
        );
        eprintln!(
            "drqosd: registered {registered} shared-risk groups (seed {})",
            args.seed
        );
    }
    Ok(net)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let net = match build_network(&args) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("drqosd: {msg}");
            return ExitCode::from(2);
        }
    };
    let addr = format!("127.0.0.1:{}", args.port);
    let server = match Server::bind(&addr, net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("drqosd: bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "drqosd: serving {} ({}) on {addr}, {} wire",
        args.topology,
        match args.topology.as_str() {
            "ring" => format!("{} nodes", args.nodes),
            _ => format!("{}x{}", args.rows, args.cols),
        },
        match server.wire() {
            drqos_core::env::WireMode::Text => "text",
            drqos_core::env::WireMode::Binary => "binary",
        }
    );
    let report = match server.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("drqosd: serve: {e}");
            return ExitCode::from(1);
        }
    };
    let out = drqos_bench::csv::default_dir().join("service_runtime.json");
    if let Some(parent) = out.parent() {
        let _ = fs::create_dir_all(parent);
    }
    match fs::write(&out, format!("{}\n", report.metrics_json)) {
        Ok(()) => eprintln!("drqosd: metrics written to {}", out.display()),
        Err(e) => eprintln!("drqosd: could not write {}: {e}", out.display()),
    }
    eprintln!(
        "drqosd: handled {} ops, shutdown violations: {}",
        report.ops, report.violations
    );
    if report.violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
