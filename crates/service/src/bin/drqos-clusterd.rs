//! `drqos-clusterd` — the federation daemons and their control client.
//!
//! One binary, four roles:
//!
//! ```text
//! drqos-clusterd coordinator [--port N] [--members M] [--seed S]
//!                            [--topology ring|torus] [--nodes N]
//!                            [--rows R] [--cols C] [--capacity KBPS]
//! drqos-clusterd member      [--port N] [--coordinator HOST:PORT]
//!                            [--topology ring|torus] [--nodes N]
//!                            [--rows R] [--cols C] [--capacity KBPS]
//! drqos-clusterd status      [--coordinator HOST:PORT]
//! drqos-clusterd stop        [--coordinator HOST:PORT]
//! ```
//!
//! A member and its coordinator MUST be booted with identical topology
//! flags: replicas replay the oplog from the shared genesis network,
//! they never transfer state. Defaults mirror `drqosd` (6x6 torus at
//! 10 Mbps per link); `--port` defaults to `DRQOS_CLUSTER_COORD_PORT`
//! for the coordinator and 7851 for a member, `--members` to
//! `DRQOS_CLUSTER_MEMBERS`, and the rebalance policy comes from
//! `DRQOS_CLUSTER_REBALANCE`.
//!
//! Exit codes: 2 bad arguments, 1 runtime failure or shutdown with
//! invariant violations, 0 clean.

use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::Bandwidth;
use drqos_service::clusterd::{fetch_status, request_stop, ClusterCoordinator, ClusterMember};
use drqos_topology::regular;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    role: String,
    port: Option<u16>,
    coordinator: Option<String>,
    members: usize,
    seed: u64,
    topology: String,
    nodes: usize,
    rows: usize,
    cols: usize,
    capacity_kbps: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            role: String::new(),
            port: None,
            coordinator: None,
            members: drqos_core::env::cluster_members(),
            seed: drqos_cluster::DEFAULT_CLUSTER_SEED,
            topology: "torus".to_string(),
            nodes: 12,
            rows: 6,
            cols: 6,
            capacity_kbps: 10_000,
        }
    }
}

const USAGE: &str = "usage: drqos-clusterd <coordinator|member|status|stop> \
                     [--port N] [--coordinator HOST:PORT] [--members M] [--seed S] \
                     [--topology ring|torus] [--nodes N] [--rows R] [--cols C] \
                     [--capacity KBPS]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    args.role = it
        .next()
        .cloned()
        .ok_or_else(|| format!("missing role\n{USAGE}"))?;
    if !matches!(
        args.role.as_str(),
        "coordinator" | "member" | "status" | "stop"
    ) {
        if matches!(args.role.as_str(), "--help" | "-h") {
            return Err(USAGE.to_string());
        }
        return Err(format!("unknown role {}\n{USAGE}", args.role));
    }
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--port" => {
                args.port = Some(
                    value(flag)?
                        .parse()
                        .map_err(|_| format!("bad --port\n{USAGE}"))?,
                );
            }
            "--coordinator" => args.coordinator = Some(value(flag)?),
            "--members" => {
                args.members = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --members\n{USAGE}"))?;
            }
            "--seed" => {
                args.seed = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --seed\n{USAGE}"))?;
            }
            "--topology" => args.topology = value(flag)?,
            "--nodes" => {
                args.nodes = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --nodes\n{USAGE}"))?;
            }
            "--rows" => {
                args.rows = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --rows\n{USAGE}"))?;
            }
            "--cols" => {
                args.cols = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --cols\n{USAGE}"))?;
            }
            "--capacity" => {
                args.capacity_kbps = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --capacity\n{USAGE}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn build_network(args: &Args) -> Result<Network, String> {
    let graph = match args.topology.as_str() {
        "ring" => regular::ring(args.nodes).map_err(|e| e.to_string())?,
        "torus" => regular::torus(args.rows, args.cols).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown topology {other} (ring|torus)")),
    };
    let config = NetworkConfig {
        capacity: Bandwidth::kbps(args.capacity_kbps),
        ..NetworkConfig::default()
    };
    Ok(Network::new(graph, config))
}

fn coordinator_addr(args: &Args) -> String {
    args.coordinator
        .clone()
        .unwrap_or_else(|| format!("127.0.0.1:{}", drqos_core::env::cluster_coord_port()))
}

fn run_coordinator(args: &Args) -> ExitCode {
    let net = match build_network(args) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("drqos-clusterd: {msg}");
            return ExitCode::from(2);
        }
    };
    let port = args
        .port
        .unwrap_or_else(drqos_core::env::cluster_coord_port);
    let addr = format!("127.0.0.1:{port}");
    let policy = drqos_core::env::cluster_rebalance();
    let coord = match ClusterCoordinator::bind(&addr, net, args.members, args.seed, policy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("drqos-clusterd: bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "drqos-clusterd: coordinating {} members on {addr} ({} {:?})",
        args.members, args.topology, policy
    );
    let report = match coord.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("drqos-clusterd: serve: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "drqos-clusterd: committed {} ops ({} stale replans, {} aborted prepares), \
         shutdown violations: {}",
        report.seq, report.stale_replans, report.aborted_prepares, report.violations
    );
    if report.violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_member(args: &Args) -> ExitCode {
    let net = match build_network(args) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("drqos-clusterd: {msg}");
            return ExitCode::from(2);
        }
    };
    let addr = format!("127.0.0.1:{}", args.port.unwrap_or(7851));
    let coordinator = coordinator_addr(args);
    let member = match ClusterMember::bind(&addr, net, &coordinator) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("drqos-clusterd: join via {coordinator}: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "drqos-clusterd: member m{} serving on {addr} (coordinator {coordinator})",
        member.member_id()
    );
    let report = match member.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("drqos-clusterd: serve: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "drqos-clusterd: member m{} handled {} ops, shutdown violations: {}",
        report.member, report.ops, report.violations
    );
    if report.violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match args.role.as_str() {
        "coordinator" => run_coordinator(&args),
        "member" => run_member(&args),
        "status" => match fetch_status(&coordinator_addr(&args)) {
            Ok(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("drqos-clusterd: status: {e}");
                ExitCode::from(1)
            }
        },
        // parse_args rejected every other role already.
        _ => match request_stop(&coordinator_addr(&args)) {
            Ok(()) => {
                eprintln!("drqos-clusterd: coordinator stopping");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("drqos-clusterd: stop: {e}");
                ExitCode::from(1)
            }
        },
    }
}
