//! `drqos-loadgen` — closed-loop load generator for `drqosd`.
//!
//! Spawns N worker connections replaying seeded workload slices, prints
//! ops/sec and tail latency, and records the run under the
//! `target/experiments/runtime/` convention shared with `drqos-bench`.
//! Exits 0 only if the run saw zero protocol errors (and, with
//! `--shutdown`, the server exited invariant-clean).
//!
//! ```text
//! drqos-loadgen [--addr HOST:PORT] [--endpoints A,B,...] [--clients N]
//!               [--requests N] [--seed S] [--release-prob PCT]
//!               [--min-availability F] [--scenario NAME] [--shutdown]
//! ```
//!
//! With `--endpoints`, workers are spread round-robin across several
//! daemons (a `drqos-clusterd` federation) and the report carries
//! per-endpoint counters plus an availability ratio; `--min-availability`
//! turns that ratio into an exit-code gate for CI churn runs.

use drqos_service::loadgen::{self, LoadgenConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: drqos-loadgen [--addr HOST:PORT] [--endpoints A,B,...] \
                     [--clients N] [--requests N] [--seed S] [--release-prob PCT] \
                     [--min-availability F] [--scenario NAME] [--shutdown]";

fn parse_args(argv: &[String]) -> Result<(LoadgenConfig, Option<f64>), String> {
    let mut config = LoadgenConfig::default();
    let mut min_availability = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value(flag)?,
            "--endpoints" => {
                config.endpoints = value(flag)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if config.endpoints.is_empty() {
                    return Err(format!("--endpoints needs at least one address\n{USAGE}"));
                }
            }
            "--min-availability" => {
                let f: f64 = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --min-availability\n{USAGE}"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("--min-availability must be 0..=1\n{USAGE}"));
                }
                min_availability = Some(f);
            }
            "--clients" => {
                config.clients = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --clients\n{USAGE}"))?;
            }
            "--requests" => {
                config.requests_per_client = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --requests\n{USAGE}"))?;
            }
            "--seed" => {
                config.seed = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --seed\n{USAGE}"))?;
            }
            "--release-prob" => {
                let pct: u64 = value(flag)?
                    .parse()
                    .map_err(|_| format!("bad --release-prob (whole percent)\n{USAGE}"))?;
                if pct > 100 {
                    return Err(format!("--release-prob must be 0..=100\n{USAGE}"));
                }
                config.release_prob = pct as f64 / 100.0;
            }
            "--scenario" => {
                let name = value(flag)?;
                config.scenario = drqos_core::scenario::ScenarioKind::parse(&name)
                    .ok_or_else(|| format!("unknown --scenario {name}\n{USAGE}"))?;
            }
            "--shutdown" => config.shutdown = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok((config, min_availability))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (config, min_availability) = match parse_args(&argv) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let target = if config.endpoints.is_empty() {
        config.addr.clone()
    } else {
        format!(
            "{} endpoints [{}]",
            config.endpoints.len(),
            config.endpoints.join(", ")
        )
    };
    eprintln!(
        "drqos-loadgen: {} clients x {} requests against {} (seed {})",
        config.clients, config.requests_per_client, target, config.seed
    );
    let report = match loadgen::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("drqos-loadgen: {e}");
            return ExitCode::from(1);
        }
    };
    println!("{}", report.summary());
    let stem = format!("loadgen-{}c", config.clients);
    match drqos_bench::runner::record_runtime_entry(
        &stem,
        &report.to_json(config.clients, config.seed),
    ) {
        Ok(path) => eprintln!("drqos-loadgen: recorded to {}", path.display()),
        Err(e) => eprintln!("drqos-loadgen: could not record runtime entry: {e}"),
    }
    if let Some(clean) = report.clean_shutdown {
        eprintln!(
            "drqos-loadgen: server shutdown {}",
            if clean { "clean" } else { "UNCLEAN" }
        );
        if !clean {
            return ExitCode::from(1);
        }
    }
    if let Some(floor) = min_availability {
        if report.availability < floor {
            eprintln!(
                "drqos-loadgen: availability {:.4} below floor {:.4}",
                report.availability, floor
            );
            return ExitCode::from(1);
        }
    }
    if report.protocol_errors == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("drqos-loadgen: {} protocol errors", report.protocol_errors);
        ExitCode::from(1)
    }
}
