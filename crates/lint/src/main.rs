//! The `drqos-lint` CLI. See `drqos_lint` (lib) for the rules and
//! TESTING.md for the rule table and pragma syntax.
//!
//! ```text
//! drqos-lint [--root PATH] [--json | --fix-allowlist]
//! ```
//!
//! Exits 0 with no findings, 1 with findings, 2 on usage/I-O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut fix_allowlist = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-allowlist" => fix_allowlist = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: drqos-lint [--root PATH] [--json | --fix-allowlist]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace directory two levels above this crate's
    // manifest, so `cargo run -p drqos-lint` works from anywhere in the
    // repo.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let findings = match drqos_lint::run_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("drqos-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if fix_allowlist {
        print!("{}", drqos_lint::render_fix_allowlist(&findings));
    } else if json {
        println!("{}", drqos_lint::render_json(&findings));
    } else {
        print!("{}", drqos_lint::render_human(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
