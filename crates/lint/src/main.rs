//! The `drqos-lint` CLI. See `drqos_lint` (lib) for the rules and
//! TESTING.md for the rule table and pragma syntax.
//!
//! ```text
//! drqos-lint [--root PATH] [--json | --fix-allowlist | --call-graph]
//! ```
//!
//! Exits 0 with no findings, 1 with findings, 2 on usage/I-O errors.
//! `--call-graph` dumps the resolved workspace call graph (sorted edges
//! plus function/edge counts) and exits 0 unless the resolved-edge count
//! is below the non-vacuity floor.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut fix_allowlist = false;
    let mut call_graph = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-allowlist" => fix_allowlist = true,
            "--call-graph" => call_graph = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: drqos-lint [--root PATH] [--json | --fix-allowlist | --call-graph]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace directory two levels above this crate's
    // manifest, so `cargo run -p drqos-lint` works from anywhere in the
    // repo.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    if call_graph {
        return match drqos_lint::build_workspace_graph(&root) {
            Ok(g) => {
                print!("{}", g.render_dump());
                if g.resolved_edges() >= drqos_lint::callgraph::MIN_RESOLVED_EDGES {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!(
                    "drqos-lint: cannot build call graph for {}: {e}",
                    root.display()
                );
                ExitCode::from(2)
            }
        };
    }

    let findings = match drqos_lint::run_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("drqos-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if fix_allowlist {
        print!("{}", drqos_lint::render_fix_allowlist(&findings));
    } else if json {
        println!("{}", drqos_lint::render_json(&findings));
    } else {
        print!("{}", drqos_lint::render_human(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
