//! The three interprocedural rules, built on [`crate::callgraph`]:
//!
//! * [`panic_reachability`] — from the daemon-zone entry points
//!   ([`crate::rules::NO_PANIC_FILES`]), walk the call graph and report
//!   any path reaching a panic site (`unwrap`/`expect`/`panic!`-family/
//!   indexing) *outside* the zone, printing the full call chain. Sites
//!   inside zone files stay `no-panic-daemon`'s job (same line, same
//!   contract) — and a site its pragma allows is allowed on every path,
//!   which is how the old file-scoped allowlist becomes path-level.
//! * [`lock_order`] — every function acquiring more than one lock from a
//!   `Vec<Mutex<..>>` lock family (the shard ledgers, any future member
//!   table) must do so in provably ascending index order: ascending
//!   ranges, iteration over a binding proven sorted (`.sort()` /
//!   `.sort_unstable()` before the loop, or produced by a function whose
//!   body sorts, like `Partition::touched_shards`), or strictly
//!   increasing literal indices. Anything unprovable is a diagnostic.
//! * [`determinism_taint`] — taint sources (`Instant::now`, `SystemTime`,
//!   `available_parallelism`, unseeded `HashMap`/`HashSet` state) reached
//!   from the byte-pinned emitter files ([`crate::rules::DETERMINISTIC_FILES`]
//!   ∪ [`crate::rules::FLOAT_FILES`]) are reported with the flow chain —
//!   the function-level refinement of the file-scoped `raw-clock` rule.
//!
//! Plus [`non_vacuity`]: all three rules are reachability rules over a
//! best-effort graph, so an empty graph would make them vacuously green.
//! The resolved-edge floor turns that failure mode into a finding.

use crate::callgraph::{CallGraph, FnId};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::parser::{Callee, FnDef, PanicKind, ParsedFile};
use crate::rules::{FilePragmas, Finding, DETERMINISTIC_FILES, FLOAT_FILES, NO_PANIC_FILES};
use std::collections::{BTreeMap, BTreeSet};

/// One workspace file with everything the interprocedural pass needs.
pub struct WsFile {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// The lexed file (token access for lock-order's body re-scan).
    pub lexed: Lexed,
    /// Item-level parse.
    pub parsed: ParsedFile,
    /// Pragma table, shared with the intra-file rules' usage tracking.
    pub pragmas: FilePragmas,
    /// Lines covered by `#[cfg(test)]` items (stale-pragma exclusion).
    pub test_lines: BTreeSet<u32>,
}

/// Path prefixes where *reachable* slice indexing is not reported: dense
/// arena indexing over construction-validated ids is the idiom across
/// the model crates (the same judgment as `network.rs`/`shard.rs`'s
/// per-file `false` in [`NO_PANIC_FILES`]). `unwrap`/`expect`/`panic!`
/// are still reported everywhere.
pub const INDEX_EXEMPT_PREFIXES: &[&str] = &[
    "crates/topology/src",
    "crates/markov/src",
    "crates/sim/src",
    "crates/core/src",
    "crates/cluster/src",
    "crates/analysis/src",
];

fn pragma_of<'a>(files: &'a [WsFile], path: &str) -> Option<&'a FilePragmas> {
    files.iter().find(|f| f.path == path).map(|f| &f.pragmas)
}

/// Is the panic site at `(path, line)` suppressed for reachability? A
/// `no-panic-daemon` allow also counts: it asserts the site cannot fire,
/// which covers every chain that ends there.
fn site_allowed(files: &[WsFile], path: &str, line: u32) -> bool {
    let Some(p) = pragma_of(files, path) else {
        return false;
    };
    p.allowed("panic-reachability", line) || p.allowed("no-panic-daemon", line)
}

/// Rule 7, `panic-reachability`.
pub fn panic_reachability(graph: &CallGraph, files: &[WsFile], out: &mut Vec<Finding>) {
    const RULE: &str = "panic-reachability";
    let zone: BTreeSet<&str> = NO_PANIC_FILES.iter().map(|(p, _)| *p).collect();
    let mut entries: Vec<FnId> = Vec::new();
    for &(path, _) in NO_PANIC_FILES {
        entries.extend(graph.fns_in_file(path));
    }
    let parents = graph.bfs_parents(&entries);

    let mut seen: BTreeSet<(String, u32, PanicKind)> = BTreeSet::new();
    for &id in parents.keys() {
        let node = &graph.fns[id];
        if zone.contains(node.file.as_str()) {
            continue; // no-panic-daemon's jurisdiction
        }
        for site in &node.def.panics {
            if site.kind == PanicKind::Index
                && INDEX_EXEMPT_PREFIXES
                    .iter()
                    .any(|p| node.file.starts_with(p))
            {
                continue;
            }
            if !seen.insert((node.file.clone(), site.line, site.kind)) {
                continue;
            }
            if site_allowed(files, &node.file, site.line) {
                continue;
            }
            let chain = graph.chain_to(&parents, id);
            out.push(Finding {
                file: node.file.clone(),
                line: site.line,
                rule: RULE,
                message: format!(
                    "{} reachable from the daemon zone; call chain: {}",
                    site.kind.describe(),
                    chain.join(" -> ")
                ),
            });
        }
    }
}

/// A taint source a call site can be.
fn taint_source(callee: &Callee) -> Option<&'static str> {
    match callee {
        Callee::Path(segs) => {
            let last = segs.last().map(String::as_str);
            let prev = (segs.len() >= 2).then(|| segs[segs.len() - 2].as_str());
            match (prev, last) {
                (Some("Instant"), Some("now")) => Some("Instant::now"),
                (Some("SystemTime"), _) => Some("SystemTime"),
                (_, Some("available_parallelism")) => Some("std::thread::available_parallelism"),
                (Some("HashMap"), Some("new" | "with_capacity" | "from")) => {
                    Some("unseeded HashMap state")
                }
                (Some("HashSet"), Some("new" | "with_capacity" | "from")) => {
                    Some("unseeded HashSet state")
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Rule 8, `determinism-taint`.
pub fn determinism_taint(graph: &CallGraph, files: &[WsFile], out: &mut Vec<Finding>) {
    const RULE: &str = "determinism-taint";
    let emitters: BTreeSet<&str> = DETERMINISTIC_FILES
        .iter()
        .chain(FLOAT_FILES.iter())
        .copied()
        .collect();
    let mut entries: Vec<FnId> = Vec::new();
    for &path in &emitters {
        entries.extend(graph.fns_in_file(path));
    }
    let parents = graph.bfs_parents(&entries);

    let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    for &id in parents.keys() {
        let node = &graph.fns[id];
        for call in &node.def.calls {
            let Some(src) = taint_source(&call.callee) else {
                continue;
            };
            if !seen.insert((node.file.clone(), call.line, src)) {
                continue;
            }
            let allowed = pragma_of(files, &node.file).is_some_and(|p| p.allowed(RULE, call.line));
            if allowed {
                continue;
            }
            let chain = graph.chain_to(&parents, id);
            out.push(Finding {
                file: node.file.clone(),
                line: call.line,
                rule: RULE,
                message: format!(
                    "{src} taints byte-pinned emitter output; flow: {}",
                    chain.join(" -> ")
                ),
            });
        }
    }
}

/// One lock acquisition found by the body re-scan.
struct Acquisition {
    line: u32,
    /// Tokens of the index expression inside `[..]`.
    idx: Vec<String>,
    /// Innermost enclosing `for` loop, if any (index into the loop list).
    in_loop: Option<usize>,
}

/// One `for` loop in a function body.
struct ForLoop {
    /// The loop pattern's binding (`s` in `for &s in &touched`).
    pat_var: Option<String>,
    /// Tokens of the iterated expression.
    iter: Vec<String>,
    /// Token range of the loop body (open brace .. matching close).
    body: (usize, usize),
}

fn find_for_loops(toks: &[Token], range: (usize, usize)) -> Vec<ForLoop> {
    let mut loops = Vec::new();
    let (start, end) = range;
    let mut i = start;
    while i < end {
        if !(toks[i].kind == TokenKind::Ident && toks[i].text == "for") {
            i += 1;
            continue;
        }
        // `for<'a>` HRTB is not a loop.
        if toks.get(i + 1).is_some_and(|t| t.text == "<") {
            i += 1;
            continue;
        }
        // Pattern runs to `in`.
        let mut j = i + 1;
        let mut pat_var = None;
        while j < end && toks[j].text != "in" {
            if toks[j].kind == TokenKind::Ident {
                pat_var = Some(toks[j].text.clone());
            }
            j += 1;
        }
        if j >= end {
            break;
        }
        // Iterated expression runs to the body `{` at bracket depth 0.
        let mut depth = 0i32;
        let mut k = j + 1;
        let mut iter = Vec::new();
        while k < end {
            match toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                _ => {}
            }
            iter.push(toks[k].text.clone());
            k += 1;
        }
        if k >= end {
            break;
        }
        let body_end = crate::parser::body_end_from(toks, k);
        loops.push(ForLoop {
            pat_var,
            iter,
            body: (k, body_end),
        });
        i = k + 1; // descend into the body so nested loops are found too
    }
    loops
}

/// Does `name` refer (by workspace-unique name) to a function whose body
/// sorts — i.e. may be trusted to produce ascending indices?
fn is_sorted_producer(name: &str, sorted_fns: &BTreeMap<String, bool>) -> bool {
    sorted_fns.get(name).copied().unwrap_or(false)
}

/// Can the loop's iterated expression be proven ascending?
fn loop_provably_ascending(
    lp: &ForLoop,
    body_toks: &[String],
    sorted_fns: &BTreeMap<String, bool>,
) -> bool {
    // Reversal defeats any sortedness proof.
    if lp.iter.iter().any(|t| t == "rev") {
        return false;
    }
    // `a..b` / `a..=b` ranges ascend.
    if lp.iter.windows(2).any(|w| w[0] == "." && w[1] == ".") {
        return true;
    }
    // Iterating a sorted producer's result directly: `for s in x.touched_shards(..)`.
    if lp.iter.iter().any(|t| is_sorted_producer(t, sorted_fns)) {
        return true;
    }
    // Iterating a BTree collection ascends by key.
    if lp.iter.iter().any(|t| t == "BTreeSet" || t == "BTreeMap") {
        return true;
    }
    // Otherwise find the base binding and look for a sortedness witness
    // in its `let` initializer (or a later `.sort*()` call on it).
    let base = lp
        .iter
        .iter()
        .find(|t| {
            t.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        })
        .cloned();
    let Some(base) = base else { return false };
    let mut i = 0usize;
    while i + 2 < body_toks.len() {
        // `let <base> = <init> ;`
        if body_toks[i] == "let" {
            let mut j = i + 1;
            while j < body_toks.len() && body_toks[j] != "=" && body_toks[j] != ";" {
                j += 1;
            }
            let binds_base = body_toks[i + 1..j].contains(&base);
            if binds_base && j < body_toks.len() && body_toks[j] == "=" {
                let mut k = j + 1;
                let mut init = Vec::new();
                let mut depth = 0i32;
                while k < body_toks.len() {
                    match body_toks[k].as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                    init.push(body_toks[k].clone());
                    k += 1;
                }
                let ok = init.iter().any(|t| {
                    t == "BTreeSet" || t == "BTreeMap" || is_sorted_producer(t, sorted_fns)
                }) || init.windows(2).any(|w| w[0] == "." && w[1] == ".");
                if ok {
                    return true;
                }
            }
        }
        // `<base>.sort()` / `<base>.sort_unstable()` anywhere in the body.
        if body_toks[i] == base
            && body_toks[i + 1] == "."
            && (body_toks[i + 2] == "sort" || body_toks[i + 2] == "sort_unstable")
        {
            return true;
        }
        i += 1;
    }
    false
}

/// Rule 9, `lock-order`.
pub fn lock_order(files: &[WsFile], out: &mut Vec<Finding>) {
    // Lock families declared anywhere in the workspace.
    let families: BTreeSet<String> = files
        .iter()
        .flat_map(|f| f.parsed.lock_families.iter().map(|l| l.field.clone()))
        .collect();
    if families.is_empty() {
        return;
    }

    // Wrapper functions: any fn whose body contains a `.lock(` call can
    // acquire on behalf of its caller (e.g. `lock_ledger`).
    let mut wrappers: BTreeSet<String> = BTreeSet::new();
    // Sorted producers: fn name → every fn of that name sorts in its body.
    let mut sorted_fns: BTreeMap<String, bool> = BTreeMap::new();
    for f in files {
        for def in &f.parsed.fns {
            let toks = &f.lexed.tokens;
            let (s, e) = def.body;
            let mut locks = false;
            let mut sorts = false;
            let mut i = s;
            while i + 1 < e.min(toks.len()) {
                if toks[i].text == "." {
                    match toks[i + 1].text.as_str() {
                        "lock" => locks = true,
                        "sort" | "sort_unstable" => sorts = true,
                        _ => {}
                    }
                }
                i += 1;
            }
            if locks {
                wrappers.insert(def.name.clone());
            }
            sorted_fns
                .entry(def.name.clone())
                .and_modify(|v| *v &= sorts)
                .or_insert(sorts);
        }
    }

    for f in files {
        for def in &f.parsed.fns {
            if def.is_test {
                continue;
            }
            check_fn_lock_order(f, def, &families, &wrappers, &sorted_fns, out);
        }
    }

    fn check_fn_lock_order(
        f: &WsFile,
        def: &FnDef,
        families: &BTreeSet<String>,
        wrappers: &BTreeSet<String>,
        sorted_fns: &BTreeMap<String, bool>,
        out: &mut Vec<Finding>,
    ) {
        const RULE: &str = "lock-order";
        let toks = &f.lexed.tokens;
        let (start, end) = (def.body.0, def.body.1.min(f.lexed.tokens.len()));
        let loops = find_for_loops(toks, (start, end));
        let body_strs: Vec<String> = toks[start..end].iter().map(|t| t.text.clone()).collect();

        // Per family: collect acquisitions.
        for family in families {
            let mut acqs: Vec<Acquisition> = Vec::new();
            let mut i = start;
            while i < end {
                if !(toks[i].kind == TokenKind::Ident && toks[i].text == *family) {
                    i += 1;
                    continue;
                }
                if toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
                    i += 1;
                    continue;
                }
                // Index tokens to the matching `]`.
                let mut depth = 0i32;
                let mut j = i + 1;
                let mut idx = Vec::new();
                while j < end {
                    match toks[j].text.as_str() {
                        "[" => {
                            depth += 1;
                            if depth == 1 {
                                j += 1;
                                continue;
                            }
                        }
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    idx.push(toks[j].text.clone());
                    j += 1;
                }
                // Acquisition? Either `family[i].lock(` or the indexing
                // appears in the arguments of a wrapper call.
                let direct = toks.get(j + 1).is_some_and(|t| t.text == ".")
                    && toks.get(j + 2).is_some_and(|t| t.text == "lock");
                let mut via_wrapper = false;
                let lo = start.max(i.saturating_sub(8));
                for k in (lo..i).rev() {
                    match toks[k].text.as_str() {
                        ";" | "{" | "}" => break,
                        _ => {}
                    }
                    if toks[k].kind == TokenKind::Ident
                        && wrappers.contains(&toks[k].text)
                        && toks.get(k + 1).is_some_and(|t| t.text == "(")
                    {
                        via_wrapper = true;
                        break;
                    }
                }
                if direct || via_wrapper {
                    let in_loop = loops
                        .iter()
                        .enumerate()
                        .filter(|(_, lp)| lp.body.0 < i && i < lp.body.1)
                        .map(|(li, _)| li)
                        .next_back(); // innermost = last matching (nested found later)
                    acqs.push(Acquisition {
                        line: toks[i].line,
                        idx,
                        in_loop,
                    });
                }
                i = j + 1;
            }

            if acqs.is_empty() {
                continue;
            }
            let looped: Vec<&Acquisition> = acqs.iter().filter(|a| a.in_loop.is_some()).collect();
            if acqs.len() == 1 && looped.is_empty() {
                continue; // a single straight-line acquisition cannot deadlock
            }

            // Loop acquisitions: index must be exactly the loop binding of
            // a provably ascending loop.
            let mut bad: Option<(u32, String)> = None;
            for a in &looped {
                let lp = &loops[a.in_loop.unwrap()];
                let idx_is_pat =
                    a.idx.len() == 1 && lp.pat_var.as_deref() == Some(a.idx[0].as_str());
                if !idx_is_pat {
                    bad = Some((
                        a.line,
                        format!(
                            "loop acquisition index `{}` is not the loop binding",
                            a.idx.join(" ")
                        ),
                    ));
                    break;
                }
                if !loop_provably_ascending(lp, &body_strs, sorted_fns) {
                    bad = Some((
                        a.line,
                        "loop over indices not provably ascending (sort them, use a range, \
                         or iterate a sorted producer like Partition::touched_shards)"
                            .to_string(),
                    ));
                    break;
                }
            }
            // Straight-line multiple acquisitions: literal indices must
            // strictly ascend; anything symbolic is unprovable.
            if bad.is_none() && looped.is_empty() && acqs.len() > 1 {
                let literals: Option<Vec<u64>> = acqs
                    .iter()
                    .map(|a| {
                        (a.idx.len() == 1)
                            .then(|| a.idx[0].parse::<u64>().ok())
                            .flatten()
                    })
                    .collect();
                let proven = literals
                    .as_ref()
                    .is_some_and(|ls| ls.windows(2).all(|w| w[0] < w[1]));
                if !proven {
                    bad = Some((
                        acqs[1].line,
                        "multiple acquisitions with indices not provably ascending".to_string(),
                    ));
                }
            }
            // Mixed loop + straight-line acquisition of one family in one
            // fn: no idiom we can prove.
            if bad.is_none() && !looped.is_empty() && looped.len() != acqs.len() {
                bad = Some((
                    acqs[0].line,
                    "mixes loop and straight-line acquisitions of the same lock family".to_string(),
                ));
            }

            if let Some((line, why)) = bad {
                if f.pragmas.allowed(RULE, line) {
                    continue;
                }
                out.push(Finding {
                    file: f.path.clone(),
                    line,
                    rule: RULE,
                    message: format!(
                        "function {} acquires multiple `{family}` locks; {why} — lock order \
                         must be provably ascending to preserve deadlock freedom",
                        def.qualified_name(),
                    ),
                });
            }
        }
    }
}

/// Rule 11, `call-graph`: the non-vacuity gate. The reachability rules
/// are only as strong as the resolver feeding them; a resolved-edge
/// count below the floor is itself a finding so a parser/resolver
/// regression cannot silently turn the rules green.
pub fn non_vacuity(graph: &CallGraph, floor: usize, out: &mut Vec<Finding>) {
    if graph.resolved_edges() < floor {
        out.push(Finding {
            file: "crates/lint/src/callgraph.rs".to_string(),
            line: 1,
            rule: "call-graph",
            message: format!(
                "call graph resolved only {} edges (floor {}): the resolver has regressed and \
                 the interprocedural rules can no longer be trusted",
                graph.resolved_edges(),
                floor
            ),
        });
    }
}

/// Rule 10, `stale-pragma`: a `lint:allow` declaration that suppressed
/// nothing this run is dead weight — either the violation it covered is
/// gone (delete it) or it never matched (it is masking nothing and would
/// silently swallow a future, different finding).
pub fn stale_pragmas(files: &[WsFile], out: &mut Vec<Finding>) {
    const RULE: &str = "stale-pragma";
    for f in files {
        for (line, rule) in f.pragmas.stale(&f.test_lines) {
            let known = crate::rules::RULES.contains(&rule.as_str());
            let why = if known {
                "suppresses nothing"
            } else {
                "names an unknown rule"
            };
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE,
                message: format!("lint:allow({rule}) {why}; remove the dead pragma"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::MIN_RESOLVED_EDGES;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn ws(files: &[(&str, &str)]) -> (Vec<WsFile>, CallGraph) {
        let ws: Vec<WsFile> = files
            .iter()
            .map(|(p, s)| {
                let lexed = lex(s);
                let parsed = parse_file(&lexed);
                let pragmas = FilePragmas::collect(&lexed);
                WsFile {
                    path: p.to_string(),
                    lexed,
                    parsed,
                    pragmas,
                    test_lines: BTreeSet::new(),
                }
            })
            .collect();
        let graph = CallGraph::build(ws.iter().map(|f| (f.path.as_str(), &f.parsed)));
        (ws, graph)
    }

    #[test]
    fn reachable_panic_across_crates_is_reported_with_chain() {
        let (files, graph) = ws(&[
            (
                "crates/service/src/engine.rs",
                "fn handle() { drqos_topology::paths::k_shortest(); }",
            ),
            (
                "crates/topology/src/paths.rs",
                "pub fn k_shortest() { helper(); }\nfn helper() { x.unwrap(); }",
            ),
        ]);
        let mut out = Vec::new();
        panic_reachability(&graph, &files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "panic-reachability");
        assert_eq!(out[0].file, "crates/topology/src/paths.rs");
        assert_eq!(out[0].line, 2);
        assert!(
            out[0].message.contains("handle")
                && out[0].message.contains("k_shortest")
                && out[0].message.contains("helper"),
            "chain missing: {}",
            out[0].message
        );
    }

    #[test]
    fn unreachable_panic_is_not_reported() {
        let (files, graph) = ws(&[
            (
                "crates/service/src/engine.rs",
                "fn handle() { safe(); } fn safe() {}",
            ),
            (
                "crates/topology/src/paths.rs",
                "pub fn island() { x.unwrap(); }",
            ),
        ]);
        let mut out = Vec::new();
        panic_reachability(&graph, &files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn pragma_on_site_suppresses_every_chain() {
        let (files, graph) = ws(&[
            (
                "crates/service/src/engine.rs",
                "fn handle() { drqos_topology::paths::k_shortest(); }",
            ),
            (
                "crates/topology/src/paths.rs",
                "pub fn k_shortest() { x.unwrap(); // lint:allow(panic-reachability): bounded by caller\n}",
            ),
        ]);
        let mut out = Vec::new();
        panic_reachability(&graph, &files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ascending_loop_over_sorted_producer_is_provable() {
        let (files, _) = ws(&[(
            "crates/core/src/shard.rs",
            r#"
            struct S { ledgers: Vec<Mutex<L>> }
            fn lock_ledger(m: &Mutex<L>) -> G { m.lock().unwrap_or_else(|e| e.into_inner()) }
            impl S {
                fn wave(&self) {
                    let touched = self.partition.touched_shards(links.iter());
                    for &s in &touched {
                        let g = lock_ledger(&self.ledgers[s]);
                    }
                }
            }
            "#,
        ), (
            "crates/topology/src/partition.rs",
            "impl Partition { pub fn touched_shards(&self) -> Vec<usize> { let mut shards: Vec<usize> = v; shards.sort_unstable(); shards.dedup(); shards } }",
        )]);
        let mut out = Vec::new();
        lock_order(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn descending_literal_pair_is_a_finding() {
        let (files, _) = ws(&[(
            "crates/core/src/shard.rs",
            r#"
            struct S { ledgers: Vec<Mutex<L>> }
            impl S {
                fn bad(&self) {
                    let a = self.ledgers[2].lock();
                    let b = self.ledgers[1].lock();
                }
            }
            "#,
        )]);
        let mut out = Vec::new();
        lock_order(&files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock-order");
    }

    #[test]
    fn unsorted_loop_acquisition_is_a_finding() {
        let (files, _) = ws(&[(
            "crates/core/src/shard.rs",
            r#"
            struct S { ledgers: Vec<Mutex<L>> }
            impl S {
                fn bad(&self, picks: Vec<usize>) {
                    for s in picks {
                        let g = self.ledgers[s].lock();
                    }
                }
            }
            "#,
        )]);
        let mut out = Vec::new();
        lock_order(&files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("not provably ascending"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn taint_flows_from_emitter_to_clock_read() {
        let (files, graph) = ws(&[
            (
                "crates/core/src/snapshot.rs",
                "pub fn render() { stamp(); }",
            ),
            (
                "crates/core/src/measure.rs",
                "pub fn stamp() -> u64 { let t = Instant::now(); 0 }",
            ),
        ]);
        let mut out = Vec::new();
        determinism_taint(&graph, &files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "determinism-taint");
        assert_eq!(out[0].file, "crates/core/src/measure.rs");
        assert!(out[0].message.contains("render") && out[0].message.contains("stamp"));
    }

    #[test]
    fn non_vacuity_fires_on_an_empty_graph() {
        let (_, graph) = ws(&[("crates/core/src/a.rs", "fn lonely() {}")]);
        let mut out = Vec::new();
        non_vacuity(&graph, MIN_RESOLVED_EDGES, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "call-graph");
    }

    #[test]
    fn stale_pragma_is_reported_and_used_pragma_is_not() {
        let (files, graph) = ws(&[
            (
                "crates/service/src/engine.rs",
                "fn handle() { drqos_topology::paths::go(); }",
            ),
            (
                "crates/topology/src/paths.rs",
                "pub fn go() { x.unwrap(); // lint:allow(panic-reachability): fine\n}\n\
                 fn dead() {} // lint:allow(raw-clock): nothing here\n",
            ),
        ]);
        let mut out = Vec::new();
        panic_reachability(&graph, &files, &mut out);
        stale_pragmas(&files, &mut out);
        let stale: Vec<&Finding> = out.iter().filter(|f| f.rule == "stale-pragma").collect();
        assert_eq!(stale.len(), 1, "{out:?}");
        assert!(stale[0].message.contains("raw-clock"));
    }
}
