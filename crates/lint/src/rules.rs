//! The six drqos rules, the per-file pragma machinery, and the zone map.
//!
//! Every rule works on the token stream from [`crate::lexer`] — never on
//! raw text — so commented-out code, string contents, and raw strings can
//! never produce findings. `#[cfg(test)]` items are excluded wholesale:
//! tests may panic, read clocks, and index slices at will.
//!
//! ## Zones
//!
//! The codebase splits into zones with different obligations, mirroring
//! the paper's split between the analyzed model and the measurement edge:
//!
//! * **daemon zone** — `drqosd`'s event loop, connection readers, and the
//!   admission path they drive ([`NO_PANIC_FILES`]): must not panic.
//! * **byte-stable zone** — snapshot/series/golden/wire emitters whose
//!   byte-equality CI proves ([`DETERMINISTIC_FILES`], [`FLOAT_FILES`]):
//!   no unordered iteration, no unpinned float formatting.
//! * **sim zone** — everything the deterministic experiments run through
//!   ([`CLOCK_DENY_PREFIXES`]): no wall-clock reads outside the
//!   explicitly-exempt measurement modules ([`CLOCK_EXEMPT_FILES`]).

use crate::lexer::{Lexed, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule id.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Stable rule ids, in documentation order.
pub const RULES: &[&str] = &[
    "no-panic-daemon",
    "nondeterministic-iteration",
    "env-registry",
    "raw-clock",
    "float-format",
    "wire-doc-sync",
    "panic-reachability",
    "lock-order",
    "determinism-taint",
    "stale-pragma",
    "call-graph",
];

/// Files where panics are forbidden (the daemon zone). The `bool` is
/// whether the slice-index check also applies: it does for the service
/// files (their only indexing would be into request data), but not for
/// `network.rs`, whose dense `links[id.index()]` arena indexing is the
/// idiom and is bounds-established at construction.
pub const NO_PANIC_FILES: &[(&str, bool)] = &[
    ("crates/service/src/server.rs", true),
    ("crates/service/src/engine.rs", true),
    ("crates/service/src/protocol.rs", true),
    ("crates/service/src/frame.rs", true),
    ("crates/service/src/bin/drqosd.rs", true),
    ("crates/service/src/clusterd.rs", true),
    ("crates/service/src/bin/drqos-clusterd.rs", true),
    ("crates/core/src/network.rs", false),
    ("crates/core/src/shard.rs", false),
    ("crates/core/src/scenario.rs", false),
    ("crates/core/src/srlg.rs", false),
];

/// Files whose output is pinned byte-exact by CI (golden traces, sweep
/// CSVs, wire payloads): no `HashMap`/`HashSet` — iteration order would
/// leak straight into the bytes.
pub const DETERMINISTIC_FILES: &[&str] = &[
    "crates/core/src/snapshot.rs",
    "crates/core/src/wire.rs",
    "crates/testkit/src/golden.rs",
    "crates/testkit/src/session.rs",
    "crates/bench/src/csv.rs",
    "crates/bench/src/runner.rs",
    "crates/service/src/engine.rs",
    "crates/service/src/protocol.rs",
    "crates/service/src/frame.rs",
];

/// Emitter files where every float reaching `format!` must carry an
/// explicit precision (`{:.3}`): default float `Display` is
/// shortest-round-trip, so a representation change upstream would change
/// committed CSV/golden bytes.
pub const FLOAT_FILES: &[&str] = &[
    "crates/bench/src/csv.rs",
    "crates/bench/src/runner.rs",
    "crates/testkit/src/golden.rs",
    "crates/core/src/snapshot.rs",
];

/// Crate source trees that must not read wall clocks (the sim zone plus
/// the daemon's deterministic command handling).
pub const CLOCK_DENY_PREFIXES: &[&str] = &[
    "crates/topology/src",
    "crates/markov/src",
    "crates/sim/src",
    "crates/core/src",
    "crates/analysis/src",
    "crates/testkit/src",
    "crates/service/src",
    "crates/cluster/src",
];

/// Measurement-edge modules exempt from `raw-clock`: parameter estimation
/// wall-timing, the daemon's latency metrics, and the client-side load
/// generator (it measures the daemon from outside).
pub const CLOCK_EXEMPT_FILES: &[&str] = &[
    "crates/core/src/measure.rs",
    "crates/service/src/metrics.rs",
    "crates/service/src/loadgen.rs",
];

/// Path prefixes exempt from `env-registry`'s string scan: the registry
/// itself is where the names live, and the linter (this crate) must name
/// the prefix it scans for plus fixture strings in its tests.
pub const ENV_EXEMPT_PREFIXES: &[&str] = &["crates/core/src/env.rs", "crates/lint"];

/// The `lint:allow` pragmas of one file, with usage tracking.
///
/// Suppression coverage is permissive (any line comment *containing*
/// `lint:allow(...)` suppresses, as it always has), but only comments
/// that *begin* with the pragma are treated as declarations for the
/// `stale-pragma` rule — prose that merely mentions the syntax (e.g.
/// rule documentation) is neither a declaration nor expected to be used.
///
/// Usage is recorded behind a `RefCell` so the intra-file rules and the
/// interprocedural pass can share one immutable view per file and still
/// account for which declarations earned their keep.
pub struct FilePragmas {
    /// (code line, rule) → pragma comment line that covers it.
    cover: BTreeMap<(u32, String), u32>,
    /// Strict declarations: (pragma comment line, rule).
    decls: Vec<(u32, String)>,
    /// Declarations that suppressed at least one would-be finding.
    used: std::cell::RefCell<BTreeSet<(u32, String)>>,
}

impl FilePragmas {
    /// Collects `// lint:allow(rule[, rule...])[: justification]`
    /// pragmas. A pragma suppresses matching findings on its own line;
    /// when the comment sits alone on its line, it also covers the
    /// following line.
    pub fn collect(lexed: &Lexed) -> Self {
        let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        let mut cover: BTreeMap<(u32, String), u32> = BTreeMap::new();
        let mut decls: Vec<(u32, String)> = Vec::new();
        for c in &lexed.comments {
            if !c.is_line {
                continue;
            }
            let Some(start) = c.text.find("lint:allow(") else {
                continue;
            };
            let strict = c.text.trim_start().starts_with("lint:allow(");
            let rest = &c.text[start + "lint:allow(".len()..];
            let Some(end) = rest.find(')') else { continue };
            for rule in rest[..end].split(',') {
                let rule = rule.trim().to_string();
                if rule.is_empty() {
                    continue;
                }
                if strict {
                    decls.push((c.line, rule.clone()));
                }
                cover.insert((c.line, rule.clone()), c.line);
                if !code_lines.contains(&c.line) {
                    cover.insert((c.line + 1, rule), c.line);
                }
            }
        }
        Self {
            cover,
            decls,
            used: std::cell::RefCell::new(BTreeSet::new()),
        }
    }

    /// Is `rule` suppressed on `line`? Marks the covering declaration
    /// used when it is.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        match self.cover.get(&(line, rule.to_string())) {
            Some(&pragma_line) => {
                self.used
                    .borrow_mut()
                    .insert((pragma_line, rule.to_string()));
                true
            }
            None => false,
        }
    }

    /// Declarations that suppressed nothing this run, excluding any on
    /// lines covered by `#[cfg(test)]` items (tests may carry pragmas
    /// for fixture strings without them being live suppressions).
    pub fn stale(&self, test_lines: &BTreeSet<u32>) -> Vec<(u32, String)> {
        let used = self.used.borrow();
        self.decls
            .iter()
            .filter(|(line, rule)| {
                !used.contains(&(*line, rule.clone()))
                    && !test_lines.contains(line)
                    && !test_lines.contains(&(line + 1))
            })
            .cloned()
            .collect()
    }
}

/// A lexed file plus the derived context rules need: which tokens are
/// inside `#[cfg(test)]` items, and which lines carry `lint:allow`
/// pragmas for which rules.
pub struct FileView<'a> {
    /// Repo-relative path, forward slashes.
    pub path: &'a str,
    /// Code tokens.
    pub tokens: &'a [Token],
    in_test: Vec<bool>,
    pragmas: FilePragmas,
}

impl<'a> FileView<'a> {
    /// Builds the view: marks test ranges and collects pragmas.
    pub fn new(path: &'a str, lexed: &'a Lexed) -> Self {
        let in_test = mark_test_tokens(&lexed.tokens);
        let pragmas = FilePragmas::collect(lexed);
        Self {
            path,
            tokens: &lexed.tokens,
            in_test,
            pragmas,
        }
    }

    /// Is token `i` inside a `#[cfg(test)]` item?
    pub fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Lines carrying tokens inside `#[cfg(test)]` items.
    pub fn test_lines(&self) -> BTreeSet<u32> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| self.is_test(*i))
            .map(|(_, t)| t.line)
            .collect()
    }

    /// Is `rule` suppressed on `line` by a `lint:allow` pragma?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.pragmas.allowed(rule, line)
    }

    /// Surrenders the pragma table (with its usage state) so the
    /// workspace pass can keep consulting it after the view is gone.
    pub fn into_pragmas(self) -> FilePragmas {
        self.pragmas
    }

    fn finding(&self, rule: &'static str, line: u32, message: String) -> Option<Finding> {
        if self.allowed(rule, line) {
            return None;
        }
        Some(Finding {
            file: self.path.to_string(),
            line,
            rule,
            message,
        })
    }
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item (attribute
/// through closing brace, or through `;` for braceless items like `use`).
pub fn mark_test_tokens(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        // `#[ ... ]`: find the attribute's bracket span.
        let Some(open) = tokens.get(i + 1).filter(|t| t.text == "[") else {
            i += 1;
            continue;
        };
        let _ = open;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut close = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(close) = close else { break };
        let attr_mentions_test = tokens[i..=close]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "cfg")
            && tokens[i..=close]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == "test");
        if !attr_mentions_test {
            i = close + 1;
            continue;
        }
        // Gated item: runs to its closing brace, or to `;` if the item is
        // braceless (`#[cfg(test)] use ...;`). Braces inside parens (e.g.
        // closures in a fn signature default) are rare enough to ignore.
        let mut k = close + 1;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => {
                    brace_depth += 1;
                    entered = true;
                }
                "}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if entered && brace_depth == 0 {
                        break;
                    }
                }
                ";" if !entered => break,
                _ => {}
            }
            k += 1;
        }
        let end = k.min(tokens.len().saturating_sub(1));
        for flag in in_test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// Idents that legitimately precede `[` without it being an index
/// expression (`impl [T]`, `dyn [..]` are contrived, but `mut`, `in`,
/// `return`, `else`, `match` arms binding arrays are real).
pub const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "async",
    "await", "true", "false", "vec",
];

/// Rule 1, `no-panic-daemon`: no `.unwrap()` / `.expect()` /
/// `panic!`-family macros (and, where configured, no slice indexing) in
/// the daemon zone.
pub fn no_panic_daemon(view: &FileView<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-panic-daemon";
    let Some(&(_, check_index)) = NO_PANIC_FILES.iter().find(|(p, _)| *p == view.path) else {
        return;
    };
    let toks = view.tokens;
    for (i, t) in toks.iter().enumerate() {
        if view.is_test(i) {
            continue;
        }
        match t.kind {
            TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let after_dot = i > 0 && toks[i - 1].text == ".";
                let called = toks.get(i + 1).is_some_and(|n| n.text == "(");
                if after_dot && called {
                    out.extend(view.finding(
                        RULE,
                        t.line,
                        format!(
                            ".{}() can panic the daemon; map the failure onto a wire error \
                             code instead",
                            t.text
                        ),
                    ));
                }
            }
            TokenKind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "todo" | "unimplemented" | "unreachable"
                ) && toks.get(i + 1).is_some_and(|n| n.text == "!") =>
            {
                out.extend(view.finding(
                    RULE,
                    t.line,
                    format!(
                        "{}! aborts the event loop; return an error response instead",
                        t.text
                    ),
                ));
            }
            TokenKind::Punct if check_index && t.text == "[" && i > 0 => {
                let prev = &toks[i - 1];
                let indexes_value = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if indexes_value {
                    out.extend(view.finding(
                        RULE,
                        t.line,
                        "slice indexing can panic the daemon; use .get()/.first()".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Rule 2, `nondeterministic-iteration`: no `HashMap`/`HashSet` in files
/// whose output bytes CI pins — iteration order would leak into them.
pub fn nondeterministic_iteration(view: &FileView<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "nondeterministic-iteration";
    if !DETERMINISTIC_FILES.contains(&view.path) {
        return;
    }
    for (i, t) in view.tokens.iter().enumerate() {
        if view.is_test(i) {
            continue;
        }
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.extend(view.finding(
                RULE,
                t.line,
                format!(
                    "{} iteration order is randomized per process; use BTreeMap/BTreeSet \
                     in byte-stable code",
                    t.text
                ),
            ));
        }
    }
}

/// Rule 3, `env-registry` (token half): any `"DRQOS_..."` string literal
/// outside `crates/core/src/env.rs` means an env read (or name) bypassing
/// the registry. The docs half lives in [`crate::check_env_docs`].
pub fn env_registry(view: &FileView<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "env-registry";
    if ENV_EXEMPT_PREFIXES.iter().any(|p| view.path.starts_with(p)) {
        return;
    }
    for (i, t) in view.tokens.iter().enumerate() {
        if view.is_test(i) {
            continue;
        }
        if t.kind == TokenKind::Str && t.text.starts_with("DRQOS_") {
            out.extend(view.finding(
                RULE,
                t.line,
                format!(
                    "literal \"{}\" bypasses the registry; use drqos_core::env's accessors \
                     or name constants",
                    t.text
                ),
            ));
        }
    }
}

/// Rule 4, `raw-clock`: no `Instant::now` / `SystemTime` in the sim zone
/// outside the exempt measurement modules.
pub fn raw_clock(view: &FileView<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "raw-clock";
    let denied = CLOCK_DENY_PREFIXES.iter().any(|p| view.path.starts_with(p))
        && !CLOCK_EXEMPT_FILES.contains(&view.path);
    if !denied {
        return;
    }
    let toks = view.tokens;
    for (i, t) in toks.iter().enumerate() {
        if view.is_test(i) || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "SystemTime" {
            out.extend(
                view.finding(
                    RULE,
                    t.line,
                    "SystemTime in deterministic code; route timing through measure.rs or \
                 the service metrics layer"
                        .to_string(),
                ),
            );
        }
        if t.text == "Instant"
            && toks.get(i + 1).is_some_and(|a| a.text == ":")
            && toks.get(i + 2).is_some_and(|b| b.text == ":")
            && toks.get(i + 3).is_some_and(|c| c.text == "now")
        {
            out.extend(
                view.finding(
                    RULE,
                    t.line,
                    "Instant::now in deterministic code; use metrics::OpTimer or measure.rs"
                        .to_string(),
                ),
            );
        }
    }
}

/// Rule 5, `float-format`: in emitter files, every float reaching a
/// formatting macro must use an explicit precision (`{:.3}`); default
/// float `Display` is not a stable byte contract.
pub fn float_format(view: &FileView<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "float-format";
    if !FLOAT_FILES.contains(&view.path) {
        return;
    }
    let toks = view.tokens;

    // Pass 1: names declared or annotated as f64/f32 anywhere in the file
    // (`x: f64`, `x: &f64`). Coarse but effective — emitter files are
    // small and single-purpose.
    let mut float_names: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.text == ":") {
            let mut j = i + 2;
            while toks
                .get(j)
                .is_some_and(|t| t.text == "&" || t.kind == TokenKind::Lifetime)
            {
                j += 1;
            }
            if toks
                .get(j)
                .is_some_and(|t| t.text == "f64" || t.text == "f32")
            {
                float_names.insert(&toks[i].text);
            }
        }
    }

    const FMT_MACROS: &[&str] = &[
        "format", "print", "println", "eprint", "eprintln", "write", "writeln",
    ];
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let is_fmt = t.kind == TokenKind::Ident
            && FMT_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|a| a.text == "!")
            && toks.get(i + 2).is_some_and(|b| b.text == "(");
        if !is_fmt || view.is_test(i) {
            i += 1;
            continue;
        }
        // Collect the macro's argument tokens (matching parens).
        let args_start = i + 3;
        let mut depth = 1usize;
        let mut j = args_start;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let args_end = j.saturating_sub(1); // index of closing paren
        check_format_call(view, &toks[args_start..args_end], &float_names, t.line, out);
        i = args_end.max(i + 1);
    }

    fn check_format_call(
        view: &FileView<'_>,
        args: &[Token],
        float_names: &BTreeSet<&str>,
        call_line: u32,
        out: &mut Vec<Finding>,
    ) {
        // The format string is the first Str argument (write!/writeln!
        // put the writer first).
        let Some(fmt_idx) = args.iter().position(|t| t.kind == TokenKind::Str) else {
            return;
        };
        let fmt = &args[fmt_idx];
        // Split the remaining args at top-level commas.
        let mut positional: Vec<&[Token]> = Vec::new();
        let mut depth = 0usize;
        let mut start = fmt_idx + 1;
        // Skip the comma right after the format string.
        if args.get(start).is_some_and(|t| t.text == ",") {
            start += 1;
        }
        let mut seg_start = start;
        for (k, t) in args.iter().enumerate().skip(start) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "," if depth == 0 => {
                    positional.push(&args[seg_start..k]);
                    seg_start = k + 1;
                }
                _ => {}
            }
        }
        if seg_start < args.len() {
            positional.push(&args[seg_start..]);
        }

        let arg_is_float = |toks: &[Token]| -> bool {
            toks.iter().any(|t| {
                (t.kind == TokenKind::Ident
                    && (float_names.contains(t.text.as_str())
                        || t.text == "f64"
                        || t.text == "f32"
                        || t.text.ends_with("_f64")
                        || t.text.ends_with("_f32")))
                    || (t.kind == TokenKind::Num && t.text.contains('.'))
            })
        };

        // Walk the placeholders.
        let s: Vec<char> = fmt.text.chars().collect();
        let mut pos_counter = 0usize;
        let mut p = 0usize;
        while p < s.len() {
            if s[p] == '{' && s.get(p + 1) == Some(&'{') {
                p += 2;
                continue;
            }
            if s[p] != '{' {
                p += 1;
                continue;
            }
            let Some(close_off) = s[p..].iter().position(|&c| c == '}') else {
                break;
            };
            let inner: String = s[p + 1..p + close_off].iter().collect();
            p += close_off + 1;
            let (name, spec) = match inner.split_once(':') {
                Some((n, sp)) => (n, Some(sp)),
                None => (inner.as_str(), None),
            };
            let has_precision = spec.is_some_and(|sp| sp.contains('.'));
            if has_precision {
                // A `{}`-style placeholder consumes a positional arg even
                // when its precision makes it compliant.
                if name.is_empty() {
                    pos_counter += 1;
                }
                continue;
            }
            // No precision: is the referenced value a float?
            let is_float = if name.is_empty() {
                let r = positional
                    .get(pos_counter)
                    .copied()
                    .is_some_and(arg_is_float);
                pos_counter += 1;
                r
            } else if let Ok(idx) = name.parse::<usize>() {
                positional.get(idx).copied().is_some_and(arg_is_float)
            } else {
                float_names.contains(name)
            };
            if is_float {
                let shown = if name.is_empty() { "{}" } else { name };
                out.extend(view.finding(
                    RULE,
                    fmt.line.max(call_line),
                    format!(
                        "float formatted without explicit precision ({shown}); pin it \
                         (e.g. {{:.3}}) so emitted bytes cannot drift"
                    ),
                ));
            }
        }
    }
}

/// Parses `WIRE_CODES`-style `(code, "description")` pairs out of the
/// lexed `wire.rs`, for [`crate::check_wire_docs`].
pub fn wire_code_table(lexed: &Lexed) -> Vec<(u16, String)> {
    let toks = &lexed.tokens;
    let Some(start) = toks.iter().position(|t| t.text == "WIRE_CODES") else {
        return Vec::new();
    };
    // Skip the type annotation (it contains its own `[`): the literal's
    // opening bracket is the first one after the `=`.
    let Some(eq) = toks[start..].iter().position(|t| t.text == "=") else {
        return Vec::new();
    };
    let eq = start + eq;
    let Some(open) = toks[eq..].iter().position(|t| t.text == "[") else {
        return Vec::new();
    };
    let open = eq + open;
    let mut depth = 0usize;
    let mut pairs = Vec::new();
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "(" if depth == 1 => {
                // Expect Num , Str )
                if let (Some(num), Some(desc)) = (toks.get(i + 1), toks.get(i + 3)) {
                    if num.kind == TokenKind::Num && desc.kind == TokenKind::Str {
                        if let Ok(code) = num.text.parse::<u16>() {
                            pairs.push((code, desc.text.clone()));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_rule(path: &str, src: &str, rule: fn(&FileView<'_>, &mut Vec<Finding>)) -> Vec<Finding> {
        let lexed = lex(src);
        let view = FileView::new(path, &lexed);
        let mut out = Vec::new();
        rule(&view, &mut out);
        out
    }

    #[test]
    fn cfg_test_modules_are_invisible() {
        let src = r#"
            fn live() { x.get(0); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); panic!("fine in tests"); }
            }
        "#;
        assert!(run_rule("crates/service/src/engine.rs", src, no_panic_daemon).is_empty());
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let src = "let a = m.get(&k).expect(\"x\"); // lint:allow(no-panic-daemon)\n\
                   // lint:allow(no-panic-daemon): justified here\n\
                   let b = m.get(&k).expect(\"y\");\n\
                   let c = m.get(&k).expect(\"z\");\n";
        let f = run_rule("crates/core/src/network.rs", src, no_panic_daemon);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn index_rule_applies_only_where_configured() {
        let src = "fn f() { let x = items[0]; }";
        assert_eq!(
            run_rule("crates/service/src/engine.rs", src, no_panic_daemon).len(),
            1
        );
        // network.rs: arena indexing is the idiom, not checked.
        assert!(run_rule("crates/core/src/network.rs", src, no_panic_daemon).is_empty());
        // Attributes and array literals are not index expressions.
        let src = "#[derive(Debug)] fn g() { let a = [1, 2]; let v = vec![3]; }";
        assert!(run_rule("crates/service/src/engine.rs", src, no_panic_daemon).is_empty());
    }

    #[test]
    fn wire_code_table_parses_pairs() {
        let lexed = lex(r#"pub const WIRE_CODES: &[(u16, &str)] = &[
                (100, "qos: zero minimum"),
                (201, "admission: same endpoints"),
            ];"#);
        assert_eq!(
            wire_code_table(&lexed),
            vec![
                (100, "qos: zero minimum".to_string()),
                (201, "admission: same endpoints".to_string())
            ]
        );
    }
}
