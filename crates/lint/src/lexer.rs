//! A minimal Rust lexer: just enough token structure for the lint rules
//! to reason about *code* while never being fooled by comments, string
//! contents, char literals, or lifetimes.
//!
//! Hand-rolled (the container is offline — no `syn`, no `proc-macro2`)
//! and deliberately small: the rules only need identifier/punctuation
//! streams with line numbers plus the comment text (for `lint:allow`
//! pragmas), so the lexer does not classify keywords, parse numbers
//! beyond "a number", or build a syntax tree.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, `r#async`).
    Ident,
    /// A single punctuation byte (`.`, `!`, `[`, `#`, ...).
    Punct,
    /// String literal of any flavor: `"..."`, `r"..."`, `r#"..."#`,
    /// `b"..."`, `br#"..."#`. The token's `text` is the *unquoted*
    /// content.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integers and floats, any base, with suffixes).
    Num,
    /// A lifetime (`'a`, `'static`). Distinguished from [`TokenKind::Char`]
    /// so a `'s` in generics is never misread as an unterminated char.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token text (unquoted content for [`TokenKind::Str`]).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// A comment (the rules scan these for `lint:allow` pragmas).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True for `//` comments (pragmas are only honored in these:
    /// a pragma buried in a block comment is almost certainly stale
    /// documentation, not an annotation).
    pub is_line: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`. Unterminated constructs (string or block comment running
/// to EOF) terminate the token silently: the linter must degrade
/// gracefully on in-progress code, and rustc will report the real error.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    // Advances `k` chars from position `i`, counting newlines.
    macro_rules! advance {
        ($k:expr) => {{
            let k: usize = $k;
            for off in 0..k {
                if bytes[i + off] == '\n' {
                    line += 1;
                }
            }
            i += k;
        }};
    }

    while i < n {
        let c = bytes[i];

        // Whitespace.
        if c.is_whitespace() {
            advance!(1);
            continue;
        }

        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start_line = line;
            let mut j = i + 2;
            while j < n && bytes[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: bytes[i + 2..j].iter().collect(),
                line: start_line,
                is_line: true,
            });
            advance!(j - i);
            continue;
        }

        // Block comment, with nesting (Rust block comments nest).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = if depth == 0 { j - 2 } else { j };
            out.comments.push(Comment {
                text: bytes[i + 2..end].iter().collect(),
                line: start_line,
                is_line: false,
            });
            advance!(j - i);
            continue;
        }

        // Raw strings and raw/byte identifiers: r"..", r#".."#, br".."
        // b"..", r#ident.
        if c == 'r' || c == 'b' {
            // Look ahead past an optional second prefix char (`br`/`rb`
            // is not legal Rust but `br` is).
            let mut p = i + 1;
            let mut is_raw = c == 'r';
            if c == 'b' && p < n && bytes[p] == 'r' {
                is_raw = true;
                p += 1;
            }
            if is_raw && p < n && (bytes[p] == '#' || bytes[p] == '"') {
                // Count hashes.
                let mut hashes = 0usize;
                while p < n && bytes[p] == '#' {
                    hashes += 1;
                    p += 1;
                }
                if p < n && bytes[p] == '"' {
                    // A raw string. Find closing quote + same hash count.
                    let start_line = line;
                    let content_start = p + 1;
                    let mut j = content_start;
                    'scan: while j < n {
                        if bytes[j] == '"' {
                            let mut h = 0usize;
                            while h < hashes && j + 1 + h < n && bytes[j + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    let content_end = j.min(n);
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: bytes[content_start..content_end].iter().collect(),
                        line: start_line,
                    });
                    let total = (content_end + 1 + hashes).min(n) - i;
                    advance!(total);
                    continue;
                }
                if hashes > 0 && c == 'r' && p < n && is_ident_start(bytes[p]) {
                    // Raw identifier `r#ident`.
                    let mut j = p;
                    while j < n && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: bytes[p..j].iter().collect(),
                        line,
                    });
                    advance!(j - i);
                    continue;
                }
                // `r#` / `b#` followed by something else: fall through and
                // lex as ident + punct.
            }
            if c == 'b' && i + 1 < n && (bytes[i + 1] == '"' || bytes[i + 1] == '\'') {
                // Byte string / byte char: skip the `b` and let the
                // ordinary string/char lexing below handle the rest.
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: "b".to_string(),
                    line,
                });
                advance!(1);
                continue;
            }
        }

        // Ordinary string literal with escapes.
        if c == '"' {
            let start_line = line;
            let mut j = i + 1;
            while j < n {
                match bytes[j] {
                    '\\' if j + 1 < n => j += 2,
                    '"' => break,
                    _ => j += 1,
                }
            }
            let content_end = j.min(n);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: bytes[i + 1..content_end].iter().collect(),
                line: start_line,
            });
            advance!((content_end + 1).min(n) - i);
            continue;
        }

        // Char literal vs lifetime. `'` starts a lifetime when followed by
        // an ident char NOT followed by a closing `'` ('a, in `<'a>`), and
        // a char literal otherwise ('x', '\n', '\'').
        if c == '\'' {
            let next_is_ident = i + 1 < n && is_ident_continue(bytes[i + 1]);
            let closes_as_char = i + 2 < n && bytes[i + 2] == '\'';
            if next_is_ident && !closes_as_char {
                // Lifetime (or 'static etc.).
                let mut j = i + 1;
                while j < n && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: bytes[i + 1..j].iter().collect(),
                    line,
                });
                advance!(j - i);
                continue;
            }
            // Char literal: handle escapes ('\'' , '\\', '\u{1F600}').
            let start_line = line;
            let mut j = i + 1;
            while j < n {
                match bytes[j] {
                    '\\' if j + 1 < n => j += 2,
                    '\'' => break,
                    _ => j += 1,
                }
            }
            let content_end = j.min(n);
            out.tokens.push(Token {
                kind: TokenKind::Char,
                text: bytes[i + 1..content_end].iter().collect(),
                line: start_line,
            });
            advance!((content_end + 1).min(n) - i);
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(bytes[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: bytes[i..j].iter().collect(),
                line,
            });
            advance!(j - i);
            continue;
        }

        // Number (decimal/hex/octal/binary, floats, `_` separators,
        // suffixes). A leading digit is enough — exact grammar does not
        // matter to the rules, only "this is one numeric token".
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n
                && (bytes[j].is_ascii_alphanumeric()
                    || bytes[j] == '_'
                    || (bytes[j] == '.' && j + 1 < n && bytes[j + 1].is_ascii_digit()))
            {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: bytes[i..j].iter().collect(),
                line,
            });
            advance!(j - i);
            continue;
        }

        // Everything else: one punctuation char per token.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        advance!(1);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_hide_code() {
        let src = "// x.unwrap()\n/* y.expect(\"no\") */\nlet z = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "z"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].is_line);
        assert!(!lexed.comments[1].is_line);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner.unwrap() */ still comment */ real";
        assert_eq!(idents(src), vec!["real"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "x.unwrap() // not a comment"; after"#;
        let lexed = lex(src);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
        assert!(lexed.comments.is_empty(), "// inside a string is content");
        assert!(idents(src).contains(&"after".to_string()));
        assert!(!idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains "quotes" and unwrap()"#; done"###;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("unwrap()"));
        assert!(idents(src).contains(&"done".to_string()));
        assert!(!idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["x", "\\'"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb\n\"str\nover lines\"\nc";
        let lexed = lex(src);
        let find = |name: &str| lexed.tokens.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn raw_identifiers() {
        assert!(idents("let r#fn = 1;").contains(&"fn".to_string()));
    }

    #[test]
    fn byte_strings() {
        let lexed = lex(r#"w.write_all(b"ESTABLISH 0 3 1").unwrap()"#);
        let s: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, "ESTABLISH 0 3 1");
        // ...and the unwrap after it is still seen as code.
        assert!(lexed.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn numbers_including_floats() {
        let kinds: Vec<TokenKind> = lex("1_000 0xFF 2.5f64 3usize")
            .tokens
            .iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds, vec![TokenKind::Num; 4]);
    }

    #[test]
    fn unterminated_string_does_not_panic_or_loop() {
        let lexed = lex("let s = \"never closed");
        assert_eq!(lexed.tokens.last().map(|t| t.kind), Some(TokenKind::Str));
    }
}
