//! # drqos-lint
//!
//! In-repo static analysis for the drqos workspace: a dependency-free
//! lexer + rule engine that mechanically enforces the contracts the
//! dynamic test suite proves — determinism of byte-pinned outputs, a
//! panic-free daemon, and single-source-of-truth registries for env vars
//! and wire codes.
//!
//! The token-level rules and their zones live in [`rules`]; the
//! interprocedural rules (`panic-reachability`, `lock-order`,
//! `determinism-taint`) live in [`interproc`] on top of the item-level
//! [`parser`] and the workspace [`callgraph`]. Pragma syntax is
//! `// lint:allow(<rule>)[: justification]` on the offending line or
//! alone on the line above; a pragma that suppresses nothing is itself a
//! `stale-pragma` finding. TESTING.md documents the full rule table.
//!
//! Run over the workspace:
//!
//! ```text
//! cargo run -p drqos-lint            # human output, exit 1 on findings
//! cargo run -p drqos-lint -- --json  # machine output (CI)
//! cargo run -p drqos-lint -- --fix-allowlist  # ready-to-paste pragmas
//! cargo run -p drqos-lint -- --call-graph     # resolved-edge dump
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod interproc;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use rules::Finding;

use callgraph::CallGraph;
use interproc::WsFile;
use rules::FileView;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "golden"];

/// Recursively collects the workspace's `.rs` files, repo-relative with
/// forward slashes, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints one file's source text. `rel_path` must be repo-relative with
/// forward slashes — it selects which zone rules apply.
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let view = FileView::new(rel_path, &lexed);
    let mut out = Vec::new();
    rules::no_panic_daemon(&view, &mut out);
    rules::nondeterministic_iteration(&view, &mut out);
    rules::env_registry(&view, &mut out);
    rules::raw_clock(&view, &mut out);
    rules::float_format(&view, &mut out);
    out
}

/// The docs half of `env-registry`: every registered variable must appear
/// in README.md's generated env table, and the committed table between
/// the `<!-- env-table:begin -->` / `<!-- env-table:end -->` markers must
/// match `drqos_core::env::readme_table()` byte-exact.
pub fn check_env_docs(readme: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |message: String| {
        out.push(Finding {
            file: "README.md".to_string(),
            line: 1,
            rule: "env-registry",
            message,
        });
    };
    for var in drqos_core::env::registry() {
        if !readme.contains(var.name) {
            push(format!(
                "registered env var {} is missing from README.md",
                var.name
            ));
        }
    }
    const BEGIN: &str = "<!-- env-table:begin";
    const END: &str = "<!-- env-table:end";
    match (readme.find(BEGIN), readme.find(END)) {
        (Some(b), Some(e)) if b < e => {
            // The marker line ends with `-->\n`; the table starts on the
            // next line.
            let after = &readme[b..e];
            let table_start = after.find("-->").map(|i| b + i + 3).unwrap_or(b);
            let committed = readme[table_start..e].trim_start_matches(['\r', '\n']);
            let generated = drqos_core::env::readme_table();
            if committed.trim_end() != generated.trim_end() {
                push(
                    "README env table drifted from drqos_core::env::registry(); \
                     regenerate it (see TESTING.md)"
                        .to_string(),
                );
            }
        }
        _ => push(
            "README.md is missing the <!-- env-table:begin/end --> markers around \
             the env table"
                .to_string(),
        ),
    }
    out
}

/// Rule 6, `wire-doc-sync`: every `(code, description)` in `wire.rs`'s
/// `WIRE_CODES` table must appear in SERVICE.md as a `| code | description |`
/// row.
pub fn check_wire_docs(wire_src: &str, service_md: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let lexed = lexer::lex(wire_src);
    let table = rules::wire_code_table(&lexed);
    if table.is_empty() {
        out.push(Finding {
            file: "crates/core/src/wire.rs".to_string(),
            line: 1,
            rule: "wire-doc-sync",
            message: "could not locate the WIRE_CODES table".to_string(),
        });
        return out;
    }
    for (code, desc) in table {
        let row_present = service_md.lines().any(|l| {
            let mut cells = l.split('|').map(str::trim);
            cells.next(); // leading empty cell before the first `|`
            matches!(
                (cells.next(), cells.next()),
                (Some(c), Some(d)) if c.trim_matches('`') == code.to_string() && d == desc
            )
        });
        if !row_present {
            out.push(Finding {
                file: "SERVICE.md".to_string(),
                line: 1,
                rule: "wire-doc-sync",
                message: format!(
                    "wire code {code} ({desc}) is not documented as a `| {code} | {desc} |` \
                     row in SERVICE.md"
                ),
            });
        }
    }
    out
}

/// Reads every workspace `.rs` file as `(repo-relative path, source)`.
fn load_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        out.push((rel, source));
    }
    Ok(out)
}

/// Lexes and parses `(path, source)` pairs into the per-file context the
/// interprocedural pass works on. The token rules run inside, so pragma
/// usage is already recorded on the returned files.
fn analyze_sources(sources: &[(String, String)], findings: &mut Vec<Finding>) -> Vec<WsFile> {
    let mut files = Vec::new();
    for (rel, source) in sources {
        let lexed = lexer::lex(source);
        let parsed = parser::parse_file(&lexed);
        let view = FileView::new(rel, &lexed);
        rules::no_panic_daemon(&view, findings);
        rules::nondeterministic_iteration(&view, findings);
        rules::env_registry(&view, findings);
        rules::raw_clock(&view, findings);
        rules::float_format(&view, findings);
        let test_lines = view.test_lines();
        let pragmas = view.into_pragmas();
        files.push(WsFile {
            path: rel.clone(),
            lexed,
            parsed,
            pragmas,
            test_lines,
        });
    }
    files
}

/// Full pipeline over in-memory sources: token rules, call-graph
/// construction, the interprocedural rules, and stale-pragma detection.
/// `edge_floor` is the non-vacuity gate ([`callgraph::MIN_RESOLVED_EDGES`]
/// for the real workspace, `0` for fixture-sized inputs). Findings come
/// back sorted by (file, line, rule).
pub fn lint_sources(sources: &[(String, String)], edge_floor: usize) -> Vec<Finding> {
    let mut findings = Vec::new();
    let files = analyze_sources(sources, &mut findings);
    let graph = CallGraph::build(files.iter().map(|f| (f.path.as_str(), &f.parsed)));
    interproc::panic_reachability(&graph, &files, &mut findings);
    interproc::lock_order(&files, &mut findings);
    interproc::determinism_taint(&graph, &files, &mut findings);
    interproc::non_vacuity(&graph, edge_floor, &mut findings);
    interproc::stale_pragmas(&files, &mut findings);
    findings.sort();
    findings.dedup();
    findings
}

/// Builds the workspace call graph (the `--call-graph` dump and the
/// tier-1 edge-floor assertion consume this).
pub fn build_workspace_graph(root: &Path) -> std::io::Result<CallGraph> {
    let sources = load_sources(root)?;
    let parsed: Vec<(String, parser::ParsedFile)> = sources
        .iter()
        .map(|(rel, src)| (rel.clone(), parser::parse_file(&lexer::lex(src))))
        .collect();
    Ok(CallGraph::build(
        parsed.iter().map(|(p, f)| (p.as_str(), f)),
    ))
}

/// Lints the whole workspace rooted at `root`: every `.rs` file through
/// the token and interprocedural rules, plus the README/SERVICE.md
/// cross-checks. Findings are sorted by (file, line, rule).
pub fn run_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let sources = load_sources(root)?;
    let mut findings = lint_sources(&sources, callgraph::MIN_RESOLVED_EDGES);
    match std::fs::read_to_string(root.join("README.md")) {
        Ok(readme) => findings.extend(check_env_docs(&readme)),
        Err(e) => findings.push(Finding {
            file: "README.md".to_string(),
            line: 1,
            rule: "env-registry",
            message: format!("README.md unreadable: {e}"),
        }),
    }
    let wire = std::fs::read_to_string(root.join("crates/core/src/wire.rs"));
    let service = std::fs::read_to_string(root.join("SERVICE.md"));
    match (wire, service) {
        (Ok(w), Ok(s)) => findings.extend(check_wire_docs(&w, &s)),
        (w, s) => {
            for (name, r) in [("crates/core/src/wire.rs", w), ("SERVICE.md", s)] {
                if let Err(e) = r {
                    findings.push(Finding {
                        file: name.to_string(),
                        line: 1,
                        rule: "wire-doc-sync",
                        message: format!("{name} unreadable: {e}"),
                    });
                }
            }
        }
    }
    findings.sort();
    Ok(findings)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as the stable JSON schema CI and the snapshot test
/// consume: `{"version":1,"findings":[{"rule":…,"file":…,"line":…,"message":…}]}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

/// Renders findings as human-readable lines (`file:line: [rule] message`).
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        out.push_str("drqos-lint: no findings\n");
    } else {
        out.push_str(&format!("drqos-lint: {} finding(s)\n", findings.len()));
    }
    out
}

/// Renders a ready-to-paste pragma per finding (`--fix-allowlist`): one
/// `file:line` header plus the `// lint:allow(rule): TODO` comment to put
/// on that line. Intentional violations should edit the TODO into a real
/// justification; everything else should be fixed instead.
pub fn render_fix_allowlist(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}\n    // lint:allow({}): TODO justify\n",
            f.file, f.line, f.rule
        ));
    }
    if findings.is_empty() {
        out.push_str("nothing to allow: no findings\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_schema_is_stable() {
        let findings = vec![Finding {
            file: "a/b.rs".to_string(),
            line: 3,
            rule: "no-panic-daemon",
            message: "said \"no\"".to_string(),
        }];
        assert_eq!(
            render_json(&findings),
            "{\"version\":1,\"findings\":[{\"rule\":\"no-panic-daemon\",\
             \"file\":\"a/b.rs\",\"line\":3,\"message\":\"said \\\"no\\\"\"}]}"
        );
        assert_eq!(render_json(&[]), "{\"version\":1,\"findings\":[]}");
    }

    #[test]
    fn env_docs_check_requires_markers_and_exact_table() {
        let good = format!(
            "# README\n<!-- env-table:begin (generated) -->\n{}<!-- env-table:end -->\n",
            drqos_core::env::readme_table()
        );
        assert!(
            check_env_docs(&good).is_empty(),
            "{:?}",
            check_env_docs(&good)
        );

        let drifted = good.replace("| `DRQOS_THREADS` |", "| `DRQOS_THREADS` (edited) |");
        assert!(check_env_docs(&drifted)
            .iter()
            .any(|f| f.message.contains("drifted")));

        let missing_var = "<!-- env-table:begin --><!-- env-table:end -->";
        let findings = check_env_docs(missing_var);
        assert!(findings.iter().any(|f| f.message.contains("DRQOS_THREADS")));
    }

    #[test]
    fn wire_docs_check_matches_rows() {
        let wire = r#"pub const WIRE_CODES: &[(u16, &str)] = &[
            (100, "qos: zero minimum"),
            (300, "network: unknown connection"),
        ];"#;
        let good = "| code | meaning |\n|---|---|\n| 100 | qos: zero minimum |\n\
                    | 300 | network: unknown connection |\n";
        assert!(check_wire_docs(wire, good).is_empty());
        let missing = "| 100 | qos: zero minimum |\n";
        let f = check_wire_docs(wire, missing);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("300"));
    }
}
