//! The workspace call graph: a symbol table over every parsed function
//! plus best-effort edge resolution.
//!
//! Resolution is deliberately *under*-approximate — an edge exists only
//! when the target is unambiguous — because the interprocedural rules
//! report reachability findings, and a spurious edge would manufacture a
//! false violation. Three resolution strategies, in order:
//!
//! 1. **Same-impl methods**: `self.method(..)` resolves inside the
//!    enclosing `impl` type (same crate).
//! 2. **Paths**: `foo(..)` and `module::foo(..)` resolve within the
//!    calling crate; `drqos_xxx::path::foo(..)` resolves into the named
//!    crate; `Type::assoc(..)` resolves by `(Type, name)` in the calling
//!    crate first, then workspace-wide when unique.
//! 3. **Unique methods**: `recv.method(..)` resolves when exactly one
//!    workspace function has that name and the name is not on the
//!    std-collision denylist (`push`, `get`, `len`, ... would otherwise
//!    pin std calls onto unrelated workspace functions).
//!
//! Unresolved calls produce no edge (std, closures, trait objects). The
//! price of this tolerance is that a resolver regression could silently
//! empty the graph and turn every reachability rule vacuously green —
//! which is why [`CallGraph::resolved_edges`] is gated by
//! [`MIN_RESOLVED_EDGES`] in [`crate::interproc::non_vacuity`].

use crate::parser::{Callee, FnDef, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Resolved-edge floor for the non-vacuity gate. The workspace resolves
/// ~3.3k edges today; a drop below this floor means the resolver (or the
/// parser feeding it) has regressed badly enough that the reachability
/// rules can no longer be trusted, and is itself a finding.
pub const MIN_RESOLVED_EDGES: usize = 2000;

/// Method names that collide with ubiquitous std APIs: never resolved by
/// bare-name uniqueness (strategy 3). A workspace method with one of
/// these names is still reachable via `self.`/`Type::` resolution.
const STD_METHOD_DENYLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "from",
    "into",
    "try_from",
    "try_into",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "contains",
    "contains_key",
    "extend",
    "sort",
    "sort_unstable",
    "dedup",
    "min",
    "max",
    "map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "filter",
    "fold",
    "find",
    "position",
    "take",
    "drain",
    "clear",
    "write",
    "write_all",
    "read",
    "read_line",
    "flush",
    "lock",
    "join",
    "send",
    "recv",
    "parse",
    "to_string",
    "as_str",
    "as_ref",
    "as_mut",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "index",
    "first",
    "last",
    "split",
    "trim",
    "starts_with",
    "ends_with",
    "chars",
    "bytes",
    "lines",
    "abs",
    "floor",
    "ceil",
    "clamp",
    "rem_euclid",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "ok",
    "err",
    "expect",
    "unwrap",
    "count",
    "sum",
    "product",
    "zip",
    "rev",
    "copied",
    "cloned",
    "any",
    "all",
    "chain",
    "flatten",
    "flat_map",
    "retain",
    "resize",
    "swap",
    "replace",
    "get_or_init",
];

/// A function's identity in the graph.
pub type FnId = usize;

/// One function node: where it lives plus its parsed definition.
#[derive(Debug)]
pub struct FnNode {
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// Crate name (`drqos_core`), derived from the path.
    pub krate: String,
    /// The parsed definition.
    pub def: FnDef,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All parsed functions, indexed by [`FnId`].
    pub fns: Vec<FnNode>,
    /// Resolved edges, caller → callees (sorted, deduped).
    pub edges: Vec<Vec<FnId>>,
    resolved_edge_count: usize,
}

/// Maps a repo-relative path under `crates/` to its crate name
/// (`crates/core/src/network.rs` → `drqos_core`). `None` for files
/// outside `crates/` (integration tests, examples) — those are parsed
/// but never resolution targets.
pub fn crate_of_path(path: &str) -> Option<String> {
    let rest = path.strip_prefix("crates/")?;
    let dir = rest.split('/').next()?;
    Some(format!("drqos_{dir}"))
}

impl CallGraph {
    /// Builds the graph from `(path, parsed)` pairs, resolving every call
    /// site it can.
    pub fn build<'x>(files: impl IntoIterator<Item = (&'x str, &'x ParsedFile)>) -> Self {
        let mut fns = Vec::new();
        for (path, parsed) in files {
            let Some(krate) = crate_of_path(path) else {
                continue;
            };
            for def in &parsed.fns {
                fns.push(FnNode {
                    file: path.to_string(),
                    krate: krate.clone(),
                    def: def.clone(),
                });
            }
        }

        // Symbol tables. Only non-test functions are resolution targets:
        // live code cannot call into `#[cfg(test)]` items.
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_crate_name: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut by_crate_type_name: BTreeMap<(&str, &str, &str), Vec<FnId>> = BTreeMap::new();
        let mut by_type_name: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        for (id, node) in fns.iter().enumerate() {
            if node.def.is_test {
                continue;
            }
            let name = node.def.name.as_str();
            by_name.entry(name).or_default().push(id);
            by_crate_name
                .entry((node.krate.as_str(), name))
                .or_default()
                .push(id);
            if let Some(ty) = &node.def.self_type {
                by_crate_type_name
                    .entry((node.krate.as_str(), ty.as_str(), name))
                    .or_default()
                    .push(id);
                by_type_name
                    .entry((ty.as_str(), name))
                    .or_default()
                    .push(id);
            }
        }
        let unique = |v: Option<&Vec<FnId>>| -> Option<FnId> {
            match v {
                Some(ids) if ids.len() == 1 => Some(ids[0]),
                _ => None,
            }
        };

        let mut edges: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
        let mut resolved_edge_count = 0usize;
        for (id, node) in fns.iter().enumerate() {
            let krate = node.krate.as_str();
            let self_ty = node.def.self_type.as_deref();
            let mut targets: BTreeSet<FnId> = BTreeSet::new();
            for call in &node.def.calls {
                let target: Option<FnId> = match &call.callee {
                    Callee::Method { name, receiver } => {
                        let name = name.as_str();
                        // Strategy 1: `self.method()` in an impl block.
                        let via_self = receiver
                            .as_deref()
                            .filter(|r| *r == "self")
                            .and(self_ty)
                            .and_then(|ty| unique(by_crate_type_name.get(&(krate, ty, name))));
                        via_self.or_else(|| {
                            // Strategy 3: workspace-unique method name.
                            if STD_METHOD_DENYLIST.contains(&name) {
                                return None;
                            }
                            unique(by_name.get(&name))
                        })
                    }
                    Callee::Path(segs) => resolve_path(
                        segs,
                        krate,
                        &unique,
                        &by_name,
                        &by_crate_name,
                        &by_crate_type_name,
                        &by_type_name,
                    ),
                    // Macros other than the panic family carry no edge of
                    // their own (their argument calls are separate sites).
                    Callee::Macro(_) => None,
                };
                if let Some(t) = target {
                    // Self-loops carry no reachability information.
                    if t != id {
                        targets.insert(t);
                    }
                }
            }
            resolved_edge_count += targets.len();
            edges[id] = targets.into_iter().collect();
        }

        Self {
            fns,
            edges,
            resolved_edge_count,
        }
    }

    /// Total resolved (deduped) edges — the non-vacuity metric.
    pub fn resolved_edges(&self) -> usize {
        self.resolved_edge_count
    }

    /// Ids of non-test functions defined in `file`.
    pub fn fns_in_file<'a>(&'a self, file: &'a str) -> impl Iterator<Item = FnId> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.file == file && !n.def.is_test)
            .map(|(id, _)| id)
    }

    /// `file:line`-style label for diagnostics: `Type::name (file:line)`.
    pub fn label(&self, id: FnId) -> String {
        let n = &self.fns[id];
        format!("{} ({}:{})", n.def.qualified_name(), n.file, n.def.line)
    }

    /// Multi-source BFS from `entries`; returns, for each reached
    /// function, the id it was first reached from (parent map), visiting
    /// in deterministic (sorted-frontier) order so reported chains are
    /// stable across runs.
    pub fn bfs_parents(&self, entries: &[FnId]) -> BTreeMap<FnId, Option<FnId>> {
        let mut parent: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
        let mut frontier: Vec<FnId> = {
            let set: BTreeSet<FnId> = entries.iter().copied().collect();
            for &e in &set {
                parent.insert(e, None);
            }
            set.into_iter().collect()
        };
        while !frontier.is_empty() {
            let mut next = BTreeSet::new();
            for &f in &frontier {
                for &t in &self.edges[f] {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(t) {
                        e.insert(Some(f));
                        next.insert(t);
                    }
                }
            }
            frontier = next.into_iter().collect();
        }
        parent
    }

    /// Reconstructs the entry→`target` chain from a [`CallGraph::bfs_parents`]
    /// map, as function labels.
    pub fn chain_to(&self, parents: &BTreeMap<FnId, Option<FnId>>, target: FnId) -> Vec<String> {
        let mut rev = vec![target];
        let mut cur = target;
        while let Some(Some(p)) = parents.get(&cur) {
            cur = *p;
            rev.push(cur);
        }
        rev.iter().rev().map(|&id| self.label(id)).collect()
    }

    /// Renders the `--call-graph` dump: a deterministic listing of every
    /// resolved edge plus summary counts (consumed by CI's floor check).
    pub fn render_dump(&self) -> String {
        let mut out = String::new();
        let mut lines: Vec<String> = Vec::new();
        for id in 0..self.fns.len() {
            for &t in &self.edges[id] {
                lines.push(format!("{} -> {}\n", self.label(id), self.label(t)));
            }
        }
        lines.sort();
        for l in &lines {
            out.push_str(l);
        }
        out.push_str(&format!(
            "call-graph: {} functions, {} resolved edges (floor {})\n",
            self.fns.len(),
            self.resolved_edges(),
            MIN_RESOLVED_EDGES
        ));
        out
    }
}

/// Path-call resolution (strategy 2). `segs` is the written path.
#[allow(clippy::too_many_arguments)]
fn resolve_path(
    segs: &[String],
    krate: &str,
    unique: &dyn Fn(Option<&Vec<FnId>>) -> Option<FnId>,
    by_name: &BTreeMap<&str, Vec<FnId>>,
    by_crate_name: &BTreeMap<(&str, &str), Vec<FnId>>,
    by_crate_type_name: &BTreeMap<(&str, &str, &str), Vec<FnId>>,
    by_type_name: &BTreeMap<(&str, &str), Vec<FnId>>,
) -> Option<FnId> {
    let name = segs.last()?.as_str();
    let qualifier = (segs.len() >= 2).then(|| segs[segs.len() - 2].as_str());
    // Tuple-struct constructors and enum variants (`NodeId(..)`,
    // `ScenarioKind::FlashCrowd` has no parens so never gets here as a
    // call; `Some(..)`/`Ok(..)` resolve to nothing) fall out naturally:
    // there is no function of that name, so no edge.
    let target_crate = match segs.first().map(String::as_str) {
        Some(first) if first.starts_with("drqos_") => first.to_string(),
        Some("crate") | Some("self") | Some("super") => krate.to_string(),
        _ => krate.to_string(),
    };
    let cross_crate = segs
        .first()
        .is_some_and(|f| f.starts_with("drqos_") && f != krate);

    // `Type::assoc(..)`: qualifier capitalized → associated-function
    // lookup, crate-local first, then workspace-unique.
    if let Some(q) = qualifier {
        if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            return unique(by_crate_type_name.get(&(target_crate.as_str(), q, name)))
                .or_else(|| unique(by_type_name.get(&(q, name))));
        }
    }
    // Free function: in the target crate (module segments are not
    // tracked, so `module::foo` uses crate-level uniqueness)...
    if let Some(id) = unique(by_crate_name.get(&(target_crate.as_str(), name))) {
        return Some(id);
    }
    // ...or workspace-unique as a fallback for bare single-segment calls
    // (helpers re-exported across crates), but never for explicit
    // cross-crate paths that failed crate-local lookup — those are more
    // likely resolver blind spots than true matches.
    if !cross_crate && segs.len() == 1 {
        return unique(by_name.get(&name));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), parse_file(&lex(s))))
            .collect();
        CallGraph::build(parsed.iter().map(|(p, f)| (p.as_str(), f)))
    }

    fn edge_labels(g: &CallGraph) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (id, node) in g.fns.iter().enumerate() {
            for &t in &g.edges[id] {
                out.push((node.def.qualified_name(), g.fns[t].def.qualified_name()));
            }
        }
        out
    }

    #[test]
    fn same_crate_free_functions_resolve() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn caller() { helper(); } fn helper() {}",
        )]);
        assert_eq!(
            edge_labels(&g),
            vec![("caller".to_string(), "helper".to_string())]
        );
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl_type() {
        let g = graph(&[(
            "crates/service/src/engine.rs",
            r#"
            impl Engine { fn handle(&mut self) { self.dispatch(); } fn dispatch(&mut self) {} }
            impl Other { fn dispatch(&mut self) {} }
            "#,
        )]);
        assert_eq!(
            edge_labels(&g),
            vec![("Engine::handle".to_string(), "Engine::dispatch".to_string())]
        );
    }

    #[test]
    fn cross_crate_paths_resolve_by_crate_name() {
        let g = graph(&[
            (
                "crates/service/src/engine.rs",
                "fn serve() { drqos_core::experiment::warm_up(); }",
            ),
            ("crates/core/src/experiment.rs", "pub fn warm_up() {}"),
        ]);
        assert_eq!(
            edge_labels(&g),
            vec![("serve".to_string(), "warm_up".to_string())]
        );
    }

    #[test]
    fn type_assoc_calls_resolve_across_crates_when_unique() {
        let g = graph(&[
            (
                "crates/core/src/scenario.rs",
                "fn run() { Pareto::from_mean(1.0, 2.0); }",
            ),
            (
                "crates/sim/src/dist.rs",
                "impl Pareto { pub fn from_mean(m: f64, s: f64) -> Self { todo_impl() } } fn todo_impl() {}",
            ),
        ]);
        assert!(edge_labels(&g).contains(&("run".to_string(), "Pareto::from_mean".to_string())));
    }

    #[test]
    fn ambiguous_and_denylisted_names_resolve_to_nothing() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            r#"
            fn caller(v: Thing) { v.render(); v.push(1); }
            impl A { fn render(&self) {} }
            impl B { fn render(&self) {} }
            impl C { fn push(&self, x: u64) {} }
            "#,
        )]);
        // `render` is ambiguous (A and B); `push` is denylisted even
        // though the workspace defines exactly one.
        assert!(edge_labels(&g).is_empty());
    }

    #[test]
    fn unique_method_names_resolve_by_receiver_heuristic() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn caller(net: &Network) { net.establish_wave(&reqs); }\n\
             impl ShardedNetwork { pub fn establish_wave(&mut self) {} }",
        )]);
        assert_eq!(
            edge_labels(&g),
            vec![(
                "caller".to_string(),
                "ShardedNetwork::establish_wave".to_string()
            )]
        );
    }

    #[test]
    fn test_functions_are_never_resolution_targets() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn live() { helper(); }\n#[cfg(test)]\nmod tests { fn helper() {} }",
        )]);
        assert!(edge_labels(&g).is_empty());
    }

    #[test]
    fn bfs_parents_and_chain_reconstruction() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn entry() { mid(); } fn mid() { leaf(); } fn leaf() {} fn island() {}",
        )]);
        let entry = g.fns_in_file("crates/core/src/a.rs").next().unwrap();
        let parents = g.bfs_parents(&[entry]);
        assert_eq!(parents.len(), 3, "island must be unreached");
        let leaf = g.fns.iter().position(|n| n.def.name == "leaf").unwrap();
        let chain = g.chain_to(&parents, leaf);
        assert_eq!(chain.len(), 3);
        assert!(chain[0].starts_with("entry"));
        assert!(chain[2].starts_with("leaf"));
    }

    #[test]
    fn dump_reports_counts() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn caller() { helper(); } fn helper() {}",
        )]);
        let dump = g.render_dump();
        assert!(dump.contains("caller (crates/core/src/a.rs:1) -> helper (crates/core/src/a.rs:1)"));
        assert!(dump.contains("2 functions, 1 resolved edges"));
    }
}
