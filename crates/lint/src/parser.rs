//! An item-level parser on top of [`crate::lexer`]: functions, impl
//! blocks, and the call expressions inside each function body.
//!
//! Still not a real Rust parser — no types, no expressions, no name
//! resolution — just enough item structure for the interprocedural rules
//! in [`crate::interproc`] to build a workspace call graph:
//!
//! * every `fn` with its name, enclosing `impl` type (if any), body token
//!   range, and `#[cfg(test)]` status;
//! * every call expression in each body, classified as a path call
//!   (`foo(..)`, `a::b::foo(..)`, `Type::method(..)`), a method call
//!   (`recv.method(..)`, with a receiver hint when the receiver is a
//!   plain identifier), or a macro invocation (`name!(..)`);
//! * every *panic site* — `.unwrap()` / `.expect()` / the `panic!` macro
//!   family / slice-index expressions — so reachability analysis can use
//!   functions containing them as sinks.
//!
//! The parser is loss-tolerant by design: anything it cannot classify is
//! simply not an item or a call, never an error. The non-vacuity gate in
//! [`crate::interproc`] protects against this tolerance silently eating
//! the whole workspace.

use crate::lexer::{Lexed, Token, TokenKind};

/// How a call names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(..)`, `a::b::foo(..)`, `Type::assoc(..)` — the full segment
    /// path as written (turbofish stripped).
    Path(Vec<String>),
    /// `recv.name(..)`. The hint is the receiver token when it is a plain
    /// identifier (`self`, a local, a field chain's last segment), used
    /// by the resolver's receiver-type heuristic.
    Method {
        /// Method name.
        name: String,
        /// Receiver identifier, when the receiver is one (`self`, `net`).
        receiver: Option<String>,
    },
    /// `name!(..)` macro invocation (panic-family macros are classified
    /// as panic sites instead and do not appear here).
    Macro(String),
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The callee as written.
    pub callee: Callee,
    /// 1-based source line.
    pub line: u32,
}

/// What kind of panic a panic site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)`.
    Expect,
    /// `panic!` / `todo!` / `unimplemented!` / `unreachable!` /
    /// `assert!`-family is *not* included (assertions are contract
    /// checks, not error handling).
    PanicMacro,
    /// A slice/array index expression (`xs[i]`).
    Index,
}

impl PanicKind {
    /// Human name used in diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            PanicKind::Unwrap => ".unwrap()",
            PanicKind::Expect => ".expect()",
            PanicKind::PanicMacro => "a panic!-family macro",
            PanicKind::Index => "slice indexing",
        }
    }
}

/// A direct panic site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// Which panic primitive.
    pub kind: PanicKind,
    /// 1-based source line.
    pub line: u32,
}

/// One parsed function (free function or method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's own name (`establish_wave`).
    pub name: String,
    /// Enclosing `impl` type's last path segment (`ShardedNetwork`),
    /// `None` for free functions.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` item (tests may panic at will).
    pub is_test: bool,
    /// Call expressions in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Direct panic sites in the body, in source order.
    pub panics: Vec<PanicSite>,
    /// Half-open token index range of the body (into the file's token
    /// stream), for rules that re-scan the raw tokens (lock-order).
    pub body: (usize, usize),
}

impl FnDef {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn qualified_name(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A struct field whose type is `Vec<Mutex<..>>` — a *lock family* for
/// the lock-order rule (`ledgers` in `ShardedNetwork`, and any future
/// per-member lock table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockFamily {
    /// Field name (`ledgers`).
    pub field: String,
    /// Struct the field belongs to, when known.
    pub owner: Option<String>,
    /// 1-based line of the field.
    pub line: u32,
}

/// Everything the interprocedural rules need from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions in source order.
    pub fns: Vec<FnDef>,
    /// `Vec<Mutex<..>>` fields declared in this file.
    pub lock_families: Vec<LockFamily>,
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "in", "as", "fn", "let", "else", "loop", "move",
    "mut", "ref", "pub", "where", "use", "impl", "dyn", "box", "break", "continue", "await",
    "unsafe", "const", "static", "crate", "super", "self", "Self", "true", "false",
];

/// Panic-family macro names.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

use crate::rules::mark_test_tokens;

/// Finds the token index of the `{` opening the body of the item whose
/// introducing keyword is at `kw`, skipping the signature. Returns `None`
/// for braceless items (`fn` in a trait without a default body, ended by
/// `;`).
fn find_body_open(toks: &[Token], kw: usize) -> Option<usize> {
    let mut j = kw + 1;
    let mut angle = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => angle += 1,
            ">"
                // `->` is not a closing angle.
                if !(j > 0 && toks[j - 1].text == "-") => {
                    angle -= 1;
                }
            "{" if angle <= 0 => return Some(j),
            ";" if angle <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Finds the token index one past the `}` matching the `{` at `open`.
/// Public so body re-scans in [`crate::interproc`] can reuse it.
pub fn body_end_from(toks: &[Token], open: usize) -> usize {
    find_body_end(toks, open)
}

fn find_body_end(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Extracts the self type from the tokens of an `impl` header
/// (`impl<T> Foo<T>`, `impl Display for ScenarioKind`): the last path
/// segment of the implementing type.
fn impl_self_type(toks: &[Token], start: usize, open: usize) -> Option<String> {
    // If a `for` appears at angle-depth 0 (not `for<'a>`), the self type
    // follows the last such `for`; otherwise it follows the generics.
    let mut angle = 0i32;
    let mut type_start = start + 1;
    for j in start + 1..open {
        match toks[j].text.as_str() {
            "<" => angle += 1,
            ">" if !(j > 0 && toks[j - 1].text == "-") => angle -= 1,
            "for" if angle <= 0 && toks.get(j + 1).map(|t| t.text.as_str()) != Some("<") => {
                type_start = j + 1;
            }
            _ => {}
        }
    }
    // Walk `A :: B :: C` and return the last ident before `<`/`where`/`{`.
    let mut last = None;
    let mut j = type_start;
    let mut angle = 0i32;
    while j < open {
        let t = &toks[j];
        match t.text.as_str() {
            "<" => angle += 1,
            ">" if !(j > 0 && toks[j - 1].text == "-") => angle -= 1,
            "where" if angle <= 0 => break,
            _ => {
                if angle <= 0 && t.kind == TokenKind::Ident && t.text != "where" {
                    last = Some(t.text.clone());
                }
            }
        }
        j += 1;
    }
    last
}

/// After an ident at `i`, skips an optional turbofish (`::<..>`); returns
/// the index of the token that should be `(` for this to be a call.
fn skip_turbofish(toks: &[Token], i: usize) -> usize {
    if toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
        && toks.get(i + 2).map(|t| t.text.as_str()) == Some(":")
        && toks.get(i + 3).map(|t| t.text.as_str()) == Some("<")
    {
        let mut depth = 0i32;
        let mut j = i + 3;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" if !(j > 0 && toks[j - 1].text == "-") => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        return j;
    }
    i + 1
}

/// Collects the `::`-separated path ending at the ident at `i`, walking
/// backwards (`a :: b :: c` with `i` on `c` yields `["a","b","c"]`).
fn path_segments_ending_at(toks: &[Token], i: usize) -> (usize, Vec<String>) {
    let mut segs = vec![toks[i].text.clone()];
    let mut first = i;
    let mut j = i;
    while j >= 2
        && toks[j - 1].text == ":"
        && toks[j - 2].text == ":"
        && j >= 3
        && toks[j - 3].kind == TokenKind::Ident
    {
        j -= 3;
        first = j;
        segs.push(toks[j].text.clone());
    }
    segs.reverse();
    (first, segs)
}

/// Scans a body token range for call expressions and panic sites.
fn scan_body(
    toks: &[Token],
    range: (usize, usize),
    calls: &mut Vec<CallSite>,
    panics: &mut Vec<PanicSite>,
) {
    let (start, end) = range;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            // Index expression: `[` whose previous token ends a value.
            if t.text == "[" && i > start {
                let prev = &toks[i - 1];
                let indexes_value = match prev.kind {
                    TokenKind::Ident => {
                        !crate::rules::NON_INDEX_KEYWORDS.contains(&prev.text.as_str())
                    }
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if indexes_value {
                    panics.push(PanicSite {
                        kind: PanicKind::Index,
                        line: t.line,
                    });
                }
            }
            i += 1;
            continue;
        }
        let after_dot = i > start && toks[i - 1].text == ".";
        // `.unwrap()` / `.expect(..)`.
        if after_dot && (t.text == "unwrap" || t.text == "expect") {
            if toks.get(i + 1).is_some_and(|n| n.text == "(") {
                panics.push(PanicSite {
                    kind: if t.text == "unwrap" {
                        PanicKind::Unwrap
                    } else {
                        PanicKind::Expect
                    },
                    line: t.line,
                });
            }
            i += 1;
            continue;
        }
        // Macro invocation `name!(..)` / `name![..]` / `name!{..}`.
        if toks.get(i + 1).is_some_and(|n| n.text == "!")
            && toks
                .get(i + 2)
                .is_some_and(|n| matches!(n.text.as_str(), "(" | "[" | "{"))
        {
            if PANIC_MACROS.contains(&t.text.as_str()) {
                panics.push(PanicSite {
                    kind: PanicKind::PanicMacro,
                    line: t.line,
                });
            } else {
                calls.push(CallSite {
                    callee: Callee::Macro(t.text.clone()),
                    line: t.line,
                });
            }
            i += 2;
            continue;
        }
        // Call: ident (possibly a path, possibly turbofished) before `(`.
        let paren_at = skip_turbofish(toks, i);
        let is_call = toks.get(paren_at).is_some_and(|n| n.text == "(")
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str());
        if is_call {
            if after_dot {
                // Method call; receiver hint when it is a plain ident.
                let receiver = (i >= 2)
                    .then(|| &toks[i - 2])
                    .filter(|r| r.kind == TokenKind::Ident)
                    .map(|r| r.text.clone());
                calls.push(CallSite {
                    callee: Callee::Method {
                        name: t.text.clone(),
                        receiver,
                    },
                    line: t.line,
                });
            } else {
                let (first, segs) = path_segments_ending_at(toks, i);
                // Struct-literal-ish guard: `Foo (` where Foo is consumed
                // as a call is fine (tuple constructors resolve to
                // nothing); but skip paths opening generic args, which
                // `path_segments_ending_at` already cannot produce.
                let _ = first;
                calls.push(CallSite {
                    callee: Callee::Path(segs),
                    line: t.line,
                });
            }
        }
        i += 1;
    }
}

/// Parses one lexed file into its functions and lock families.
pub fn parse_file(lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.tokens;
    let in_test = mark_test_tokens(toks);
    let mut out = ParsedFile::default();

    // Impl context: a stack of (self_type, body_end_token).
    let mut impl_stack: Vec<(Option<String>, usize)> = Vec::new();
    // Struct context for lock-family fields: (struct_name, body_end).
    let mut struct_ctx: Option<(String, usize)> = None;

    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(_, end)) = impl_stack.last() {
            if i >= end {
                impl_stack.pop();
            } else {
                break;
            }
        }
        if let Some((_, end)) = &struct_ctx {
            if i >= *end {
                struct_ctx = None;
            }
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                if let Some(open) = find_body_open(toks, i) {
                    let end = find_body_end(toks, open);
                    let self_ty = impl_self_type(toks, i, open);
                    impl_stack.push((self_ty, end));
                    i = open + 1;
                    continue;
                }
            }
            "struct" => {
                if let (Some(name), Some(open)) = (toks.get(i + 1), find_body_open(toks, i)) {
                    if name.kind == TokenKind::Ident {
                        struct_ctx = Some((name.text.clone(), find_body_end(toks, open)));
                        i = open + 1;
                        continue;
                    }
                }
            }
            "fn" => {
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                    i += 1;
                    continue;
                };
                let Some(open) = find_body_open(toks, i) else {
                    i += 2;
                    continue;
                };
                let end = find_body_end(toks, open);
                let mut calls = Vec::new();
                let mut panics = Vec::new();
                scan_body(
                    toks,
                    (open + 1, end.saturating_sub(1)),
                    &mut calls,
                    &mut panics,
                );
                out.fns.push(FnDef {
                    name: name_tok.text.clone(),
                    self_type: impl_stack.last().and_then(|(t, _)| t.clone()),
                    line: t.line,
                    is_test: in_test.get(i).copied().unwrap_or(false),
                    calls,
                    panics,
                    body: (open + 1, end.saturating_sub(1)),
                });
                i = end;
                continue;
            }
            _ => {
                // Lock-family field: `name : Vec < Mutex <` inside a
                // struct body (also matched at top level for robustness).
                if toks.get(i + 1).is_some_and(|n| n.text == ":")
                    && toks.get(i + 2).is_some_and(|n| n.text == "Vec")
                    && toks.get(i + 3).is_some_and(|n| n.text == "<")
                    && toks.get(i + 4).is_some_and(|n| n.text == "Mutex")
                {
                    out.lock_families.push(LockFamily {
                        field: t.text.clone(),
                        owner: struct_ctx.as_ref().map(|(n, _)| n.clone()),
                        line: t.line,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src))
    }

    #[test]
    fn free_functions_and_methods_are_extracted() {
        let p = parse(
            r#"
            fn free() { helper(); }
            impl Engine {
                fn handle(&mut self) { self.dispatch(); }
            }
            impl Display for Kind {
                fn fmt(&self) -> String { render(self) }
            }
            "#,
        );
        let names: Vec<String> = p.fns.iter().map(|f| f.qualified_name()).collect();
        assert_eq!(names, vec!["free", "Engine::handle", "Kind::fmt"]);
    }

    #[test]
    fn method_calls_carry_receiver_hints() {
        let p = parse("fn f(net: &Network) { net.establish(a, b); self.commit(); chain().go(); }");
        let calls = &p.fns[0].calls;
        assert_eq!(
            calls[0].callee,
            Callee::Method {
                name: "establish".into(),
                receiver: Some("net".into())
            }
        );
        assert_eq!(
            calls[1].callee,
            Callee::Method {
                name: "commit".into(),
                receiver: Some("self".into())
            }
        );
        // `chain()` itself is a path call; its `.go()` has no ident receiver.
        assert_eq!(calls[2].callee, Callee::Path(vec!["chain".into()]));
        assert_eq!(
            calls[3].callee,
            Callee::Method {
                name: "go".into(),
                receiver: None
            }
        );
    }

    #[test]
    fn path_calls_keep_their_segments() {
        let p = parse(
            "fn f() { crate::experiment::warm_up(); drqos_core::env::threads(); Type::assoc(); }",
        );
        let paths: Vec<Vec<String>> = p.fns[0]
            .calls
            .iter()
            .filter_map(|c| match &c.callee {
                Callee::Path(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            paths,
            vec![
                vec!["crate".to_string(), "experiment".into(), "warm_up".into()],
                vec!["drqos_core".to_string(), "env".into(), "threads".into()],
                vec!["Type".to_string(), "assoc".into()],
            ]
        );
    }

    #[test]
    fn ufcs_and_turbofish_calls_parse() {
        let p = parse("fn f() { let v = xs.iter().collect::<Vec<_>>(); Pareto::from_mean(m, s); <T as Tr>::go(); }");
        let calls = &p.fns[0].calls;
        assert!(calls.iter().any(|c| matches!(
            &c.callee,
            Callee::Method { name, .. } if name == "collect"
        )));
        assert!(calls
            .iter()
            .any(|c| c.callee == Callee::Path(vec!["Pareto".into(), "from_mean".into()])));
        // UFCS `<T as Tr>::go()` degrades to a short path — never a crash.
        assert!(calls.iter().any(
            |c| matches!(&c.callee, Callee::Path(s) if s.last().map(String::as_str) == Some("go"))
        ));
    }

    #[test]
    fn macro_calls_are_classified_and_panic_macros_are_panic_sites() {
        let p = parse(r#"fn f() { writeln!(w, "{}", x.render()); panic!("boom"); vec![1]; }"#);
        let f = &p.fns[0];
        assert!(f
            .calls
            .iter()
            .any(|c| c.callee == Callee::Macro("writeln".into())));
        assert!(f
            .calls
            .iter()
            .any(|c| c.callee == Callee::Macro("vec".into())));
        // The call inside the macro args is still seen.
        assert!(f.calls.iter().any(|c| matches!(
            &c.callee,
            Callee::Method { name, .. } if name == "render"
        )));
        assert_eq!(f.panics.len(), 1);
        assert_eq!(f.panics[0].kind, PanicKind::PanicMacro);
    }

    #[test]
    fn panic_sites_cover_unwrap_expect_and_indexing() {
        let p = parse(r#"fn f() { a.unwrap(); b.expect("x"); let y = xs[i]; let arr = [1, 2]; }"#);
        let kinds: Vec<PanicKind> = p.fns[0].panics.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![PanicKind::Unwrap, PanicKind::Expect, PanicKind::Index]
        );
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let p = parse("fn live() {}\n#[cfg(test)]\nmod tests { fn helper() { x.unwrap(); } }\n");
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn nested_functions_and_closures_do_not_break_attribution() {
        let p = parse(
            r#"
            fn outer() {
                inner_call();
                let c = |x| x.mapped();
            }
            fn next_fn() { other(); }
            "#,
        );
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Path(vec!["inner_call".into()])));
        assert!(p.fns[1]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Path(vec!["other".into()])));
    }

    #[test]
    fn fn_with_where_clause_and_generic_signature_parses() {
        let p = parse(
            "fn generic<T: Fn() -> u64, U>(x: T, y: U) -> Vec<u64> where U: Clone { body_call(); }",
        );
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Path(vec!["body_call".into()])));
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let p =
            parse("trait T { fn required(&self) -> u64; fn with_default(&self) { a_call(); } }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "with_default");
    }

    #[test]
    fn lock_family_fields_are_detected() {
        let p = parse(
            "struct ShardedNetwork { net: Network, ledgers: Vec<Mutex<ShardLedger>>, n: u64 }",
        );
        assert_eq!(p.lock_families.len(), 1);
        assert_eq!(p.lock_families[0].field, "ledgers");
        assert_eq!(p.lock_families[0].owner.as_deref(), Some("ShardedNetwork"));
    }

    #[test]
    fn impl_self_type_handles_generics_and_trait_impls() {
        let p = parse(
            r#"
            impl<'a> FileView<'a> { fn new() { a(); } }
            impl<T: Clone> Wrapper<T> { fn get_inner() { b(); } }
            impl fmt::Display for ScenarioKind { fn fmt() { c(); } }
            "#,
        );
        let types: Vec<Option<&str>> = p.fns.iter().map(|f| f.self_type.as_deref()).collect();
        assert_eq!(
            types,
            vec![Some("FileView"), Some("Wrapper"), Some("ScenarioKind")]
        );
    }
}
