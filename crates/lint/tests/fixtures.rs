//! Per-rule fixture tests: for each of the six rules, one snippet that
//! fires, one that is `lint:allow`-suppressed, and one that is clean —
//! plus the `--json` schema snapshot. Fixtures are inline raw strings,
//! which doubles as a lexer test: the violation text inside these
//! literals must never leak findings into a lint of *this* file.

use drqos_lint::rules::{self, FileView, Finding};
use drqos_lint::{check_env_docs, check_wire_docs, lexer, lint_file, render_json};

/// Lints `src` as if it were the workspace file at `path`.
fn lint_as(path: &str, src: &str) -> Vec<Finding> {
    lint_file(path, src)
}

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

// ------------------------------------------------------ no-panic-daemon --

#[test]
fn no_panic_daemon_fires() {
    let src = r#"
        fn handle(&mut self) {
            let x = self.map.get(&k).unwrap();
            let y = self.map.get(&k).expect("present");
            panic!("boom");
            todo!();
            let z = items[0];
        }
    "#;
    let f = lint_as("crates/service/src/engine.rs", src);
    assert_eq!(f.len(), 5, "{f:?}");
    assert!(f.iter().all(|f| f.rule == "no-panic-daemon"));
}

#[test]
fn no_panic_daemon_suppressed() {
    let src = r#"
        fn handle(&mut self) {
            // lint:allow(no-panic-daemon): checked two lines up
            let x = self.map.get(&k).unwrap();
            let y = self.map.get(&k).expect("present"); // lint:allow(no-panic-daemon): ditto
        }
    "#;
    assert!(lint_as("crates/service/src/engine.rs", src).is_empty());
}

#[test]
fn no_panic_daemon_clean() {
    let src = r#"
        fn handle(&mut self) -> Response {
            match self.map.get(&k) {
                Some(v) => ok(v),
                None => err(),
            }
        }
        /* a block comment mentioning x.unwrap() is not code */
        const DOC: &str = "and x.unwrap() in a string is not code either";
    "#;
    assert!(lint_as("crates/service/src/engine.rs", src).is_empty());
}

#[test]
fn no_panic_daemon_only_applies_to_the_daemon_zone() {
    let src = "fn f() { x.unwrap(); }";
    assert!(lint_as("crates/markov/src/solver.rs", src).is_empty());
    assert!(!lint_as("crates/service/src/server.rs", src).is_empty());
}

// ------------------------------------------- nondeterministic-iteration --

#[test]
fn nondeterministic_iteration_fires() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}";
    let f = lint_as("crates/core/src/snapshot.rs", src);
    assert_eq!(rules_fired(&f), vec!["nondeterministic-iteration"]);
    assert_eq!(f.len(), 2);
}

#[test]
fn nondeterministic_iteration_suppressed() {
    let src = "// lint:allow(nondeterministic-iteration): keyed lookups only, never iterated\n\
               use std::collections::HashSet;";
    assert!(lint_as("crates/core/src/snapshot.rs", src).is_empty());
}

#[test]
fn nondeterministic_iteration_clean() {
    let src = "use std::collections::{BTreeMap, BTreeSet};\nfn f(m: &BTreeMap<u32, u32>) {}";
    assert!(lint_as("crates/core/src/snapshot.rs", src).is_empty());
    // HashMap is fine outside the byte-stable zone (e.g. routing scratch).
    let scratch = "use std::collections::HashMap;";
    assert!(lint_as("crates/core/src/routing.rs", scratch).is_empty());
}

// ----------------------------------------------------------- env-registry --

#[test]
fn env_registry_fires() {
    let src = r#"fn f() -> bool { std::env::var("DRQOS_TURBO").is_ok() }"#;
    let f = lint_as("crates/bench/src/runner.rs", src);
    assert_eq!(rules_fired(&f), vec!["env-registry"]);
    assert!(f[0].message.contains("DRQOS_TURBO"));
}

#[test]
fn env_registry_suppressed() {
    let src = "// lint:allow(env-registry): migration shim removed next release\n\
               fn f() -> bool { std::env::var(\"DRQOS_LEGACY\").is_ok() }";
    assert!(lint_as("crates/bench/src/runner.rs", src).is_empty());
}

#[test]
fn env_registry_clean() {
    let src = "fn f() -> Option<usize> { drqos_core::env::threads() }";
    assert!(lint_as("crates/bench/src/runner.rs", src).is_empty());
    // The registry file itself is where the names are declared.
    let decl = r#"pub const TURBO: &str = "DRQOS_TURBO";"#;
    assert!(lint_as("crates/core/src/env.rs", decl).is_empty());
}

#[test]
fn env_registry_docs_cross_check() {
    let good = format!(
        "<!-- env-table:begin -->\n{}<!-- env-table:end -->\n",
        drqos_core::env::readme_table()
    );
    assert!(check_env_docs(&good).is_empty());
    let findings = check_env_docs("no markers, no table");
    assert!(findings.iter().any(|f| f.message.contains("markers")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("DRQOS_QUEUE_DEPTH")));
}

// -------------------------------------------------------------- raw-clock --

#[test]
fn raw_clock_fires() {
    let src = "fn f() { let t0 = std::time::Instant::now(); let s = SystemTime::now(); }";
    let f = lint_as("crates/core/src/experiment.rs", src);
    assert_eq!(rules_fired(&f), vec!["raw-clock"]);
    assert_eq!(f.len(), 2);
}

#[test]
fn raw_clock_suppressed() {
    let src = "fn f() {\n\
               let t0 = Instant::now(); // lint:allow(raw-clock): startup banner only\n\
               }";
    assert!(lint_as("crates/core/src/experiment.rs", src).is_empty());
}

#[test]
fn raw_clock_clean() {
    // The exempt measurement modules may read clocks...
    let src = "fn f() { let t0 = Instant::now(); }";
    assert!(lint_as("crates/core/src/measure.rs", src).is_empty());
    assert!(lint_as("crates/service/src/metrics.rs", src).is_empty());
    // ...and bench code is outside the sim zone entirely.
    assert!(lint_as("crates/bench/src/microbench.rs", src).is_empty());
    // `Instant` without `::now` (type position, Duration math) is fine.
    let ty = "fn g(t: Instant) -> Duration { t.elapsed() }";
    assert!(lint_as("crates/core/src/experiment.rs", ty).is_empty());
}

// ----------------------------------------------------------- float-format --

#[test]
fn float_format_fires() {
    let src = r#"
        fn cell(v: f64, n: u64) -> String {
            format!("{v} {n}")
        }
        fn row(wall_s: f64) -> String {
            format!("{} done", wall_s)
        }
    "#;
    let f = lint_as("crates/bench/src/csv.rs", src);
    assert_eq!(rules_fired(&f), vec!["float-format"]);
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn float_format_suppressed() {
    let src = "fn cell(v: f64) -> String {\n\
               // lint:allow(float-format): full precision is the contract\n\
               format!(\"{v}\")\n\
               }";
    assert!(lint_as("crates/bench/src/csv.rs", src).is_empty());
}

#[test]
fn float_format_clean() {
    let src = r#"
        fn cell(v: f64, n: u64) -> String {
            format!("{v:.3} {n} {:.6}", v)
        }
    "#;
    assert!(lint_as("crates/bench/src/csv.rs", src).is_empty());
    // Integers never need precision, in any zone.
    let ints = r#"fn f(n: u64) -> String { format!("{n}") }"#;
    assert!(lint_as("crates/bench/src/csv.rs", ints).is_empty());
    // Floats formatted outside the emitter zone are unconstrained.
    let elsewhere = r#"fn f(v: f64) -> String { format!("{v}") }"#;
    assert!(lint_as("crates/analysis/src/model.rs", elsewhere).is_empty());
}

// ---------------------------------------------------------- wire-doc-sync --

const WIRE_FIXTURE: &str = r#"pub const WIRE_CODES: &[(u16, &str)] = &[
    (100, "qos: zero minimum"),
    (300, "network: unknown connection"),
];"#;

#[test]
fn wire_doc_sync_fires() {
    let md = "| Code | Meaning |\n|---|---|\n| 100 | qos: zero minimum |\n";
    let f = check_wire_docs(WIRE_FIXTURE, md);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].rule, "wire-doc-sync");
    assert!(f[0].message.contains("300"));
}

#[test]
fn wire_doc_sync_catches_description_drift() {
    let md = "| 100 | qos: zero minimum |\n| 300 | network: connection unknown |\n";
    let f = check_wire_docs(WIRE_FIXTURE, md);
    assert_eq!(f.len(), 1, "reworded row must not count: {f:?}");
}

#[test]
fn wire_doc_sync_clean() {
    let md = "prose\n\n| Code | Meaning |\n|---|---|\n| 100 | qos: zero minimum |\n\
              | 300 | network: unknown connection |\ntrailing prose\n";
    assert!(check_wire_docs(WIRE_FIXTURE, md).is_empty());
}

// ------------------------------------------------------- lexer edge cases --

#[test]
fn raw_string_containing_unwrap_is_not_a_finding() {
    let src = r###"
        fn f() -> &'static str {
            r#"x.unwrap() panic!("nope") items[0]"#
        }
    "###;
    assert!(lint_as("crates/service/src/engine.rs", src).is_empty());
}

#[test]
fn commented_out_code_is_not_a_finding() {
    let src = "fn f() {\n// let x = m.get(&k).unwrap();\n/* panic!(\"old\") */\n}";
    assert!(lint_as("crates/service/src/engine.rs", src).is_empty());
}

#[test]
fn slashes_inside_string_literals_do_not_start_comments() {
    // If `//` in the string were taken as a comment, the unwrap after it
    // would be swallowed and this fixture would pass clean.
    let src = "fn f() { let url = \"http://example/x\"; m.get(&k).unwrap(); }";
    let f = lint_as("crates/service/src/engine.rs", src);
    assert_eq!(f.len(), 1);
}

#[test]
fn pragma_inside_string_literal_is_inert() {
    let src = "fn f() { let s = \"lint:allow(no-panic-daemon)\"; x.unwrap(); }";
    assert_eq!(lint_as("crates/service/src/engine.rs", src).len(), 1);
}

// ------------------------------------------------------------ --json snap --

#[test]
fn json_output_matches_schema_snapshot() {
    let src = "fn f() { x.unwrap(); }\n";
    let findings = lint_as("crates/service/src/engine.rs", src);
    let json = render_json(&findings);
    assert_eq!(
        json,
        "{\"version\":1,\"findings\":[{\"rule\":\"no-panic-daemon\",\
         \"file\":\"crates/service/src/engine.rs\",\"line\":1,\
         \"message\":\".unwrap() can panic the daemon; map the failure onto \
         a wire error code instead\"}]}"
    );
    assert_eq!(render_json(&[]), "{\"version\":1,\"findings\":[]}");
}

// ------------------------------------------------------------- rule table --

#[test]
fn every_shipped_rule_has_a_stable_id() {
    assert_eq!(
        rules::RULES,
        &[
            "no-panic-daemon",
            "nondeterministic-iteration",
            "env-registry",
            "raw-clock",
            "float-format",
            "wire-doc-sync",
            "panic-reachability",
            "lock-order",
            "determinism-taint",
            "stale-pragma",
            "call-graph",
        ]
    );
}

#[test]
fn findings_sort_by_file_then_line_then_rule() {
    let src = "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }";
    let f = lint_as("crates/service/src/engine.rs", src);
    assert_eq!(f.len(), 2);
    assert!(f[0].line < f[1].line);
}

#[test]
fn file_view_exposes_test_exclusion() {
    let lexed = lexer::lex("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn live() {}");
    let view = FileView::new("crates/service/src/engine.rs", &lexed);
    let unwrap_idx = lexed
        .tokens
        .iter()
        .position(|t| t.text == "unwrap")
        .unwrap();
    assert!(view.is_test(unwrap_idx));
    let live_idx = lexed.tokens.iter().position(|t| t.text == "live").unwrap();
    assert!(!view.is_test(live_idx));
}

// ------------------------------------------- interprocedural (workspace) --

/// Lints a synthetic multi-file workspace through the same entry point
/// `run_workspace` uses, with the non-vacuity floor disabled (these
/// fixtures are tiny by construction).
fn lint_ws(files: &[(&str, &str)]) -> Vec<Finding> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    drqos_lint::lint_sources(&sources, 0)
}

// -------------------------------------------------- panic-reachability --

#[test]
fn panic_reachability_fires_with_the_full_call_chain() {
    // Planted violation: a daemon entry point reaches an unwrap two
    // crates away. The finding must name every hop.
    let f = lint_ws(&[
        (
            "crates/service/src/engine.rs",
            "fn handle() { drqos_topology::paths::k_shortest(); }",
        ),
        (
            "crates/topology/src/paths.rs",
            "pub fn k_shortest() { helper(); }\nfn helper() { x.unwrap(); }",
        ),
    ]);
    assert_eq!(rules_fired(&f), vec!["panic-reachability"], "{f:?}");
    assert_eq!(f[0].file, "crates/topology/src/paths.rs");
    assert_eq!(f[0].line, 2);
    for hop in ["handle", "k_shortest", "helper"] {
        assert!(
            f[0].message.contains(hop),
            "chain misses {hop}: {}",
            f[0].message
        );
    }
    assert!(f[0].message.contains("call chain"), "{}", f[0].message);
}

#[test]
fn panic_reachability_suppressed_at_the_site() {
    let f = lint_ws(&[
        (
            "crates/service/src/engine.rs",
            "fn handle() { drqos_topology::paths::k_shortest(); }",
        ),
        (
            "crates/topology/src/paths.rs",
            "pub fn k_shortest() { x.unwrap(); // lint:allow(panic-reachability): bounded by caller\n}",
        ),
    ]);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn panic_reachability_clean_when_unreachable() {
    // The panic exists but no daemon entry point can reach it.
    let f = lint_ws(&[
        (
            "crates/service/src/engine.rs",
            "fn handle() { ok(); }\nfn ok() {}",
        ),
        (
            "crates/topology/src/paths.rs",
            "pub fn island() { x.unwrap(); }",
        ),
    ]);
    assert!(f.is_empty(), "{f:?}");
}

// --------------------------------------------------- determinism-taint --

#[test]
fn determinism_taint_fires_with_the_flow_chain() {
    let f = lint_ws(&[
        (
            "crates/core/src/snapshot.rs",
            "pub fn render() { stamp(); }",
        ),
        (
            "crates/core/src/measure.rs",
            "pub fn stamp() -> u64 { let t = Instant::now(); 0 }",
        ),
    ]);
    assert_eq!(rules_fired(&f), vec!["determinism-taint"], "{f:?}");
    assert_eq!(f[0].file, "crates/core/src/measure.rs");
    assert!(
        f[0].message.contains("render") && f[0].message.contains("Instant::now"),
        "{}",
        f[0].message
    );
}

#[test]
fn determinism_taint_suppressed_at_the_source() {
    let f = lint_ws(&[
        ("crates/core/src/snapshot.rs", "pub fn render() { stamp(); }"),
        (
            "crates/core/src/measure.rs",
            "pub fn stamp() -> u64 { let t = Instant::now(); 0 } // lint:allow(determinism-taint): wall column masked",
        ),
    ]);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn determinism_taint_clean_when_no_emitter_reaches_the_clock() {
    // Same clock read, but only a non-emitter caller.
    let f = lint_ws(&[
        ("crates/core/src/routing.rs", "pub fn route() { stamp(); }"),
        (
            "crates/core/src/measure.rs",
            "pub fn stamp() -> u64 { let t = Instant::now(); 0 }",
        ),
    ]);
    assert!(f.is_empty(), "{f:?}");
}

// ----------------------------------------------------------- lock-order --

#[test]
fn lock_order_fires_on_descending_literal_acquisitions() {
    let f = lint_ws(&[(
        "crates/core/src/shard.rs",
        "struct S { ledgers: Vec<Mutex<L>> }\n\
         impl S {\n\
         fn bad(&self) {\n\
         let a = self.ledgers[2].lock();\n\
         let b = self.ledgers[1].lock();\n\
         }\n\
         }",
    )]);
    assert_eq!(rules_fired(&f), vec!["lock-order"], "{f:?}");
    assert!(
        f[0].message.contains("not provably ascending"),
        "{}",
        f[0].message
    );
}

#[test]
fn lock_order_suppressed_at_the_acquisition() {
    let f = lint_ws(&[(
        "crates/core/src/shard.rs",
        "struct S { ledgers: Vec<Mutex<L>> }\n\
         impl S {\n\
         fn odd(&self) {\n\
         let a = self.ledgers[2].lock();\n\
         // lint:allow(lock-order): second lock is a disjoint singleton shard\n\
         let b = self.ledgers[1].lock();\n\
         }\n\
         }",
    )]);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn lock_order_clean_on_range_loops() {
    let f = lint_ws(&[(
        "crates/core/src/shard.rs",
        "struct S { ledgers: Vec<Mutex<L>> }\n\
         impl S {\n\
         fn wave(&self) {\n\
         for s in 0..self.ledgers.len() {\n\
         let g = self.ledgers[s].lock();\n\
         }\n\
         }\n\
         }",
    )]);
    assert!(f.is_empty(), "{f:?}");
}

// --------------------------------------------------------- stale-pragma --

#[test]
fn stale_pragma_fires_on_a_dead_allow_and_spares_a_live_one() {
    let f = lint_ws(&[(
        "crates/core/src/routing.rs",
        "// lint:allow(raw-clock): nothing here reads a clock\n\
         fn quiet() {}\n",
    )]);
    assert_eq!(rules_fired(&f), vec!["stale-pragma"], "{f:?}");
    assert!(f[0].message.contains("raw-clock"), "{}", f[0].message);

    // A pragma that actually suppresses something is not stale.
    let live = lint_ws(&[(
        "crates/core/src/routing.rs",
        "fn t() { let t0 = Instant::now(); // lint:allow(raw-clock): startup banner\n}",
    )]);
    assert!(live.is_empty(), "{live:?}");
}

#[test]
fn stale_pragma_fires_on_an_unknown_rule_name() {
    let f = lint_ws(&[(
        "crates/core/src/routing.rs",
        "// lint:allow(no-such-rule): typo\nfn quiet() {}\n",
    )]);
    assert_eq!(rules_fired(&f), vec!["stale-pragma"], "{f:?}");
    assert!(f[0].message.contains("unknown"), "{}", f[0].message);
}

// ----------------------------------------------------------- call-graph --

#[test]
fn non_vacuity_floor_fires_when_the_resolver_goes_dark() {
    let sources = vec![(
        "crates/core/src/a.rs".to_string(),
        "fn lonely() {}".to_string(),
    )];
    let f = drqos_lint::lint_sources(&sources, 1_000_000);
    assert_eq!(rules_fired(&f), vec!["call-graph"], "{f:?}");
}

// ------------------------------------------------- deterministic output --

#[test]
fn workspace_findings_sort_by_file_then_line_then_rule() {
    // Two files, multiple rules; order must be (file, line, rule) no
    // matter which pass produced each finding.
    let f = lint_ws(&[
        (
            "crates/service/src/engine.rs",
            "fn handle() { x.unwrap(); }\nfn again() { y.unwrap(); }",
        ),
        (
            "crates/core/src/snapshot.rs",
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}",
        ),
    ]);
    assert!(f.len() >= 4, "{f:?}");
    let keys: Vec<(&str, u32, &str)> = f
        .iter()
        .map(|x| (x.file.as_str(), x.line, x.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
