//! Quickstart: establish dependable real-time connections with elastic QoS
//! on a small network, watch them share bandwidth, and release one.
//!
//! Run with `cargo run -p drqos-examples --bin quickstart`.

use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_examples::{print_connections, print_utilization};
use drqos_topology::{regular, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4×4 torus with 2 Mbps links: every node pair has link-disjoint
    // routes, so every connection gets a backup channel.
    let graph = regular::torus(4, 4)?;
    let mut net = Network::new(
        graph,
        NetworkConfig {
            capacity: Bandwidth::mbps(2),
            ..NetworkConfig::default()
        },
    );

    // The paper's video service: at least 100 Kbps for recognizable
    // images, up to 500 Kbps for high quality, adapted in 50 Kbps steps.
    let video = ElasticQos::new(
        Bandwidth::kbps(100),
        Bandwidth::kbps(500),
        Bandwidth::kbps(50),
        1.0,
    )?;

    println!("Establishing three DR-connections...");
    let a = net.establish(NodeId(0), NodeId(10), video)?;
    let b = net.establish(NodeId(1), NodeId(11), video)?;
    let c = net.establish(NodeId(5), NodeId(15), video)?;
    print_connections(&net);
    print_utilization(&net);

    println!("\nReleasing {b} — survivors may grow into the freed bandwidth:");
    net.release(b)?;
    print_connections(&net);

    let avg = net.average_bandwidth().expect("two connections remain");
    println!("\nAverage bandwidth per channel: {avg:.0} Kbps");
    assert!(net.connection(a).is_some() && net.connection(c).is_some());
    net.validate();
    Ok(())
}
