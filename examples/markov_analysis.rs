//! End-to-end reproduction of the paper's method on one load point:
//! simulate churn, measure `P_f`, `P_s`, `A`, `B`, `T`, build the Markov
//! chain, solve it, and compare the analytic average bandwidth against the
//! simulation and the ideal reference.
//!
//! Run with `cargo run --release -p drqos-examples --bin markov_analysis`.

use drqos_analysis::pipeline::analyze;
use drqos_core::experiment::ExperimentConfig;
use drqos_sim::rng::Rng;
use drqos_topology::{metrics, waxman};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = waxman::paper_waxman(100).generate(&mut Rng::seed_from_u64(2001))?;
    let summary = metrics::summarize(&graph);
    println!(
        "Topology: {} nodes, {} edges, E/N = {:.2}, diameter {:?}",
        summary.nodes,
        summary.edges,
        summary.edges as f64 / summary.nodes as f64,
        summary.diameter
    );

    let mut config = ExperimentConfig::paper_default(3_000, 50);
    config.churn_events = 2_000;
    println!(
        "Workload: {} connection attempts, then {} churn events at λ = μ = {}",
        config.target_connections, config.churn_events, config.lambda
    );

    let point = analyze(graph, &config);
    let params = point
        .report
        .params
        .as_ref()
        .expect("churn recorded arrivals");

    println!("\nMeasured parameters (paper Section 3.3):");
    println!("  P_f (directly chained)   = {:.4}", params.pf);
    println!("  P_s (indirectly chained) = {:.4}", params.ps);
    println!(
        "  A (arrival/failure retreat matrix, {0}×{0}):",
        params.n_states
    );
    for row in &params.a {
        let cells: Vec<String> = row.iter().map(|p| format!("{p:.3}")).collect();
        println!("    [{}]", cells.join(", "));
    }
    println!(
        "  level occupancy: {:?}",
        params
            .occupancy
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    println!("\nAverage bandwidth per primary channel:");
    println!(
        "  simulation : {:>6.1} Kbps",
        point.report.avg_bandwidth_sim
    );
    match point.analytic_avg {
        Some(v) => println!("  Markov model: {v:>6.1} Kbps"),
        None => println!("  Markov model:    n/a (degenerate measurement)"),
    }
    println!("  ideal      : {:>6.1} Kbps", point.ideal_avg);
    if let Some(err) = point.model_error() {
        println!(
            "\nModel-vs-simulation gap: {err:.1} Kbps ({:.1}% of the simulated value)",
            100.0 * err / point.report.avg_bandwidth_sim
        );
    }
    Ok(())
}
