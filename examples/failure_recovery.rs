//! Failure recovery walkthrough: a link dies, backup channels activate,
//! elastic channels retreat to cover the activation burst, and the lost
//! backups are re-established after repair.
//!
//! Run with `cargo run -p drqos-examples --bin failure_recovery`.

use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_examples::print_connections;
use drqos_topology::{regular, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5×5 torus with deliberately tight 1.5 Mbps links so that backup
    // activation visibly squeezes the elastic extras.
    let graph = regular::torus(5, 5)?;
    let mut net = Network::new(
        graph,
        NetworkConfig {
            capacity: Bandwidth::kbps(1_500),
            ..NetworkConfig::default()
        },
    );
    let qos = ElasticQos::paper_video(100);

    println!("Establishing DR-connections (each with a link-disjoint backup):");
    let victims = [
        net.establish(NodeId(0), NodeId(12), qos)?,
        net.establish(NodeId(1), NodeId(13), qos)?,
        net.establish(NodeId(6), NodeId(18), qos)?,
        net.establish(NodeId(5), NodeId(17), qos)?,
    ];
    print_connections(&net);

    // Kill the first link of the first connection's primary channel.
    let failed = net
        .connection(victims[0])
        .expect("just established")
        .primary()
        .links()[0];
    println!("\n!! link {failed} fails");
    let report = net.fail_link(failed)?;
    println!(
        "   activated backups: {:?}\n   dropped: {:?}\n   lost backups: {:?}\n   retreated: {:?}",
        report.activated, report.dropped, report.lost_backup, report.retreated
    );
    print_connections(&net);
    for id in &report.activated {
        let c = net.connection(*id).expect("activated connections survive");
        assert_eq!(c.failovers(), 1);
    }

    println!("\n.. link {failed} repaired");
    let regained = net.repair_link(failed)?;
    println!("   backups re-established for: {regained:?}");
    print_connections(&net);

    println!(
        "\nService continued at ≥ minimum QoS throughout — the dependability\n\
         guarantee of the backup-channel scheme, funded by bandwidth that\n\
         elastic channels were enjoying a moment earlier."
    );
    net.validate();
    Ok(())
}
