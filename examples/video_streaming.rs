//! A video-service provider scenario (the paper's motivating workload):
//! many 100–500 Kbps streams on the 100-node evaluation network, showing
//! how elastic QoS degrades gracefully as the customer count climbs —
//! instead of rejecting customers, quality steps down toward the minimum.
//!
//! Run with `cargo run --release -p drqos-examples --bin video_streaming`.

use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::ElasticQos;
use drqos_core::workload::Workload;
use drqos_examples::print_utilization;
use drqos_sim::rng::Rng;
use drqos_topology::waxman;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from_u64(7);
    let graph = waxman::paper_waxman(100).generate(&mut rng)?;
    println!(
        "Network: {} nodes, {} links of 10 Mbps each",
        graph.node_count(),
        graph.link_count()
    );
    let mut net = Network::new(graph, NetworkConfig::default());
    let workload = Workload::new(ElasticQos::paper_video(50));

    println!(
        "\n{:>10} {:>9} {:>16} {:>14}",
        "customers", "accepted", "avg quality", "at minimum"
    );
    let mut accepted = 0usize;
    for wave in 1..=8 {
        // Each wave brings 500 more subscription attempts.
        for _ in 0..500 {
            let req = workload.request(&mut rng, net.graph().node_count());
            if net.establish(req.src, req.dst, req.qos).is_ok() {
                accepted += 1;
            }
        }
        let avg = net.average_bandwidth().unwrap_or(0.0);
        let at_min = net.connections().filter(|c| c.level() == 0).count();
        let quality = match avg as u64 {
            0..=149 => "minimum",
            150..=299 => "standard",
            300..=449 => "enhanced",
            _ => "premium",
        };
        println!(
            "{:>10} {:>9} {:>8.0} Kbps ({quality}) {:>13}",
            wave * 500,
            accepted,
            avg,
            at_min
        );
    }
    println!();
    print_utilization(&net);
    println!(
        "\nEvery accepted stream keeps at least its 100 Kbps minimum; extra\n\
         bandwidth (including idle backup reservations) is lent out while it\n\
         lasts — the elastic-QoS value proposition from the paper's Section 1."
    );
    net.validate();
    Ok(())
}
