//! Forecasting QoS recovery with the transient Markov solution — the
//! extension the paper's conclusion sketches ("the proposed analysis model
//! can be expanded").
//!
//! After a disturbance (say, a failure burst forced every channel to its
//! minimum), how long until clients see their quality back? We measure the
//! model parameters once, then answer with uniformization instead of
//! re-simulating each horizon.
//!
//! Run with `cargo run --release -p drqos-examples --bin recovery_forecast`.

use drqos_analysis::model::{ElasticQosModel, EventRates};
use drqos_core::experiment::{run_churn, ExperimentConfig};
use drqos_core::snapshot::NetworkSnapshot;
use drqos_sim::rng::Rng;
use drqos_topology::waxman;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = waxman::paper_waxman(100).generate(&mut Rng::seed_from_u64(99))?;
    let mut config = ExperimentConfig::paper_default(2_000, 50);
    config.churn_events = 2_000;
    // Inject failures during measurement so the failure matrix F reflects
    // real activations (the recovery forecast itself assumes no *further*
    // failures — γ = 0 in the model rates below).
    config.gamma = 0.0005;
    config.mean_repair = 500.0;
    println!("Measuring model parameters at 2000 DR-connections (with failures)...");
    let (report, net) = run_churn(graph, &config);
    let params = report.params.expect("churn recorded arrivals");

    let snapshot = NetworkSnapshot::capture(&net);
    println!(
        "  network: {:.0}% mean utilization, {:.0}% of channels hold a backup",
        100.0 * snapshot.mean_utilization(),
        100.0 * snapshot.backup_coverage()
    );

    let rates = EventRates::paper_default(0.0);
    let model = ElasticQosModel::new(config.qos, &params, rates)?;
    let stationary = model.average_bandwidth()?;
    println!("  stationary average bandwidth: {stationary:.0} Kbps\n");

    // Scenario 1: the distribution right after a typical link failure —
    // the stationary distribution pushed through the measured failure
    // matrix F (how a real failure re-shuffles levels).
    let n = config.qos.num_levels();
    let pi = {
        let ss = model.steady_state()?;
        let mut full = vec![0.0; n];
        for (idx, &state) in model.active_states().iter().enumerate() {
            full[state] = ss.prob(idx);
        }
        full
    };
    let mut post_failure = vec![0.0; n];
    for (i, &mass) in pi.iter().enumerate() {
        for (j, slot) in post_failure.iter_mut().enumerate() {
            *slot += mass * params.f[i][j];
        }
    }
    println!("Recovery forecast after a typical link failure:");
    println!(
        "{:>12} {:>22} {:>12}",
        "time (s)", "expected bandwidth", "recovered"
    );
    let bw0 = model.transient_average_bandwidth(&post_failure, 0.0)?;
    for t in [0.0, 250.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 20_000.0] {
        let bw = model.transient_average_bandwidth(&post_failure, t)?;
        let recovered = (bw - bw0) / (stationary - bw0).max(1e-9);
        println!(
            "{t:>12.0} {bw:>17.0} Kbps {:>11.0}%",
            100.0 * recovered.min(1.0)
        );
    }
    println!(
        "(a single failure barely dents the ensemble — the measured F matrix\n\
         is nearly diagonal, which is exactly why the paper's Figure 4 is flat)"
    );

    // Scenario 2: the pessimistic planner's question — a channel wedged at
    // the lowest level the chain ever visits.
    let floor = model.active_states().first().copied().unwrap_or(0);
    let floor_bw = config.qos.level_bandwidth(floor);
    // Mean first-passage times give the planner a single number per
    // quality tier.
    println!("\nWorst case: expected time for a channel wedged at {floor_bw} to first");
    println!("reach each quality tier (slow on purpose — such a channel sits on a");
    println!("genuinely saturated bottleneck and only climbs as churn frees it):");
    for (level, label) in [(2, "200 Kbps"), (4, "300 Kbps"), (8, "500 Kbps (max)")] {
        match model.mean_passage_time(floor, level) {
            Ok(t) if t.is_finite() => println!("  {label:>15}: {t:>8.0} s"),
            _ => println!("  {label:>15}:      n/a (level not visited in measurement)"),
        }
    }

    println!(
        "\nThe recovery time constant is set by the event rates (λ = μ = {}),\n\
         not by the failure itself: elastic channels climb back one increment\n\
         at a time as terminations and indirectly-chained arrivals free\n\
         bandwidth — exactly the upward transitions of the paper's chain.",
        rates.lambda
    );
    Ok(())
}
