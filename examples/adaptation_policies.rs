//! Compares the two elastic-QoS adaptation policies on the same workload:
//!
//! * **max-utility** — extra bandwidth goes to the highest-utility channel
//!   until it saturates ("allows a channel to monopolize all the extra
//!   resources even when its utility is slightly higher");
//! * **coefficient** — extras are divided in proportion to each channel's
//!   coefficient (weighted max–min fairness).
//!
//! Run with `cargo run -p drqos-examples --bin adaptation_policies`.

use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::{AdaptationPolicy, Bandwidth, ElasticQos};
use drqos_topology::{regular, NodeId};

fn run(policy: AdaptationPolicy) -> Result<Vec<(f64, u64)>, Box<dyn std::error::Error>> {
    // A ring with room for one premium climb but not two.
    let graph = regular::ring(8)?;
    let mut net = Network::new(
        graph,
        NetworkConfig {
            capacity: Bandwidth::kbps(900),
            policy,
            ..NetworkConfig::default()
        },
    );
    let base = ElasticQos::paper_video(100);
    // Three channels on the same route with utilities 1.0, 1.0, 1.2.
    let ids = [
        net.establish(NodeId(0), NodeId(4), base.with_utility(1.0)?)?,
        net.establish(NodeId(0), NodeId(4), base.with_utility(1.0)?)?,
        net.establish(NodeId(0), NodeId(4), base.with_utility(1.2)?)?,
    ];
    net.validate();
    Ok(ids
        .iter()
        .map(|&id| {
            let c = net.connection(id).expect("established above");
            (c.qos().utility(), c.bandwidth().as_kbps())
        })
        .collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for policy in [AdaptationPolicy::MaxUtility, AdaptationPolicy::Coefficient] {
        println!("{policy:?}:");
        let mut premium_kbps = 0;
        let mut standard_total = 0;
        for (utility, kbps) in run(policy)? {
            println!("  utility {utility:>3.1} → {kbps:>3} Kbps");
            if utility > 1.0 {
                premium_kbps = kbps;
            } else {
                standard_total += kbps;
            }
        }
        match policy {
            AdaptationPolicy::MaxUtility => {
                assert!(
                    premium_kbps > standard_total / 2,
                    "the premium channel should monopolize the extras"
                );
                println!("  → the slightly-higher-utility channel takes everything\n");
            }
            AdaptationPolicy::Coefficient => {
                println!("  → extras divided in proportion to the coefficients\n");
            }
        }
    }
    println!(
        "The paper's experiments use equal utilities under the coefficient\n\
         scheme — 'the utilities of all connections are the same for fair\n\
         distribution of resources' (Section 4)."
    );
    Ok(())
}
