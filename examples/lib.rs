//! Shared helpers for the `drqos` example binaries.
//!
//! The examples are small, self-contained programs that exercise the
//! public API on the scenarios the paper's introduction motivates (video
//! services, failure recovery, capacity planning). Run any of them with
//! `cargo run -p drqos-examples --bin <name>`.

use drqos_core::network::Network;

/// Prints a one-line summary of each active connection.
pub fn print_connections(net: &Network) {
    for conn in net.connections() {
        let backup = match conn.backup() {
            Some(b) => format!("backup via {} hops", b.hop_count()),
            None => "no backup".to_string(),
        };
        println!(
            "  {}: {} over {} hops ({}, level {}/{})",
            conn.id(),
            conn.bandwidth(),
            conn.primary().hop_count(),
            backup,
            conn.level(),
            conn.qos().max_level(),
        );
    }
}

/// Prints aggregate utilization figures.
pub fn print_utilization(net: &Network) {
    let (mut used, mut reserved, mut capacity) = (0u64, 0u64, 0u64);
    for link in net.graph().links() {
        let u = net.link_usage(link.id());
        used += (u.primary_min_sum() + u.extra_sum()).as_kbps();
        reserved += u.backup_reservation().as_kbps();
        capacity += u.capacity().as_kbps();
    }
    println!(
        "  carried {used} Kbps + {reserved} Kbps backup reservation over {capacity} Kbps capacity \
         ({:.1}% utilized)",
        100.0 * (used + reserved) as f64 / capacity.max(1) as f64
    );
}
